(* Tests for the Bayesian game layer: ex-ante/interim costs, equilibrium
   predicate (with a brute-force oracle over full strategy deviations),
   the six measures, and Observation 2.1 / 2.2. *)

open Bi_num
module Dist = Bi_prob.Dist
module Strategic = Bi_game.Strategic
module Bayesian = Bi_bayes.Bayesian
module Measures = Bi_bayes.Measures

let ext = Alcotest.testable Extended.pp Extended.equal
let rat = Alcotest.testable Rat.pp Rat.equal

let half = Rat.of_ints 1 2

(* Degenerate Bayesian game: point prior on a prisoner's dilemma. *)
let degenerate_pd () =
  let table = [| [| (1, 1); (3, 0) |]; [| (0, 3); (2, 2) |] |] in
  Bayesian.make ~players:2 ~n_types:[| 1; 1 |] ~n_actions:[| 2; 2 |]
    ~prior:(Dist.point [| 0; 0 |])
    ~cost:(fun _t a i ->
      let c1, c2 = table.(a.(0)).(a.(1)) in
      Extended.of_int (if i = 0 then c1 else c2))

(* "Guess the type": player 0 (1 type, 2 actions) wants to match player
   1's type (2 equiprobable types, 1 dummy action).  Complete-information
   agents always match (cost 0); a Bayesian agent pays 1/2 whatever she
   does.  This is Bayesian ignorance in its purest form. *)
let guess_the_type () =
  Bayesian.make ~players:2 ~n_types:[| 1; 2 |] ~n_actions:[| 2; 1 |]
    ~prior:(Dist.uniform [ [| 0; 0 |]; [| 0; 1 |] ])
    ~cost:(fun t a i ->
      if i = 1 then Extended.zero
      else if a.(0) = t.(1) then Extended.zero
      else Extended.one)

let test_degenerate_matches_strategic () =
  let g = degenerate_pd () in
  let r = Measures.exhaustive g in
  Alcotest.check ext "optP = 2" (Extended.of_int 2) r.Measures.opt_p;
  Alcotest.check ext "optC = 2" (Extended.of_int 2) r.Measures.opt_c;
  Alcotest.(check (option ext)) "best-eqP = 4" (Some (Extended.of_int 4)) r.Measures.best_eq_p;
  Alcotest.(check (option ext)) "worst-eqP = 4" (Some (Extended.of_int 4)) r.Measures.worst_eq_p;
  Alcotest.(check (option ext)) "best-eqC = 4" (Some (Extended.of_int 4)) r.Measures.best_eq_c;
  Alcotest.(check (option ext)) "worst-eqC = 4" (Some (Extended.of_int 4)) r.Measures.worst_eq_c

let test_guess_the_type_measures () =
  let g = guess_the_type () in
  let r = Measures.exhaustive g in
  Alcotest.check ext "optP = 1/2" (Extended.of_rat half) r.Measures.opt_p;
  Alcotest.check ext "optC = 0" Extended.zero r.Measures.opt_c;
  Alcotest.(check (option ext)) "best-eqP" (Some (Extended.of_rat half)) r.Measures.best_eq_p;
  Alcotest.(check (option ext)) "worst-eqP" (Some (Extended.of_rat half)) r.Measures.worst_eq_p;
  Alcotest.(check (option ext)) "best-eqC" (Some Extended.zero) r.Measures.best_eq_c;
  Alcotest.(check (option ext)) "worst-eqC" (Some Extended.zero) r.Measures.worst_eq_c;
  Alcotest.(check bool) "observation 2.2" true (Measures.observation_2_2_holds r);
  (* The opt ratio is infinite (0 denominator): reported as None. *)
  let ratios = Measures.ratios_of_report r in
  Alcotest.(check bool) "opt ratio undefined" true (ratios.Measures.r_opt = None)

let test_interim_and_marginal () =
  let g = guess_the_type () in
  let s = [| [| 0 |]; [| 0; 0 |] |] in
  Alcotest.check (Alcotest.array rat) "marginal of player 1" [| half; half |]
    (Bayesian.type_marginal g 1);
  (* Player 0 plays 0: she is wrong exactly when player 1 has type 1. *)
  Alcotest.check ext "ex-ante" (Extended.of_rat half) (Bayesian.ex_ante_cost g s 0);
  (match Bayesian.interim_cost g s 0 0 with
   | Some c -> Alcotest.check ext "interim at her only type" (Extended.of_rat half) c
   | None -> Alcotest.fail "type has positive probability");
  Alcotest.check ext "social cost" (Extended.of_rat half) (Bayesian.social_cost g s)

let test_played_actions () =
  let s = [| [| 3 |]; [| 5; 7 |] |] in
  Alcotest.(check (array int)) "selection" [| 3; 7 |]
    (Bayesian.played_actions s [| 0; 1 |])

let test_underlying_game () =
  let g = guess_the_type () in
  let u = Bayesian.underlying_game g [| 0; 1 |] in
  Alcotest.check ext "complete info cost" Extended.one (Strategic.cost u [| 0; 0 |] 0);
  Alcotest.check ext "matching is free" Extended.zero (Strategic.cost u [| 1; 0 |] 0)

let test_equilibrium_guess_game () =
  let g = guess_the_type () in
  (* Player 0 is indifferent, player 1 has one action; player 0 has two
     strategies (2 actions, 1 type), player 1 one (1 action, 2 types):
     both profiles are equilibria. *)
  Alcotest.(check int) "all profiles are equilibria" 2
    (Seq.length (Bayesian.bayesian_equilibria g));
  Alcotest.(check int) "strategy space size" 2
    (Seq.length (Bayesian.strategy_profiles g))

let test_validation () =
  Alcotest.check_raises "type out of range"
    (Invalid_argument "Bayesian.make: type out of range in prior support") (fun () ->
      ignore
        (Bayesian.make ~players:1 ~n_types:[| 1 |] ~n_actions:[| 1 |]
           ~prior:(Dist.point [| 5 |])
           ~cost:(fun _ _ _ -> Extended.zero)));
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Bayesian.make: dimension arrays must have one entry per player")
    (fun () ->
      ignore
        (Bayesian.make ~players:2 ~n_types:[| 1 |] ~n_actions:[| 1; 1 |]
           ~prior:(Dist.point [| 0; 0 |])
           ~cost:(fun _ _ _ -> Extended.zero)))

(* --- Random Bayesian games for property tests --- *)

let random_bayesian seed =
  let rng = Random.State.make [| seed |] in
  let players = 2 in
  let n_types = Array.init players (fun _ -> 1 + Random.State.int rng 2) in
  let n_actions = Array.init players (fun _ -> 1 + Random.State.int rng 2) in
  let all_type_profiles =
    List.of_seq
      (Bi_ds.Combinat.product
         (List.init players (fun i -> List.init n_types.(i) Fun.id)))
  in
  let support =
    List.filter (fun _ -> Random.State.int rng 3 > 0) all_type_profiles
  in
  let support = if support = [] then [ List.hd all_type_profiles ] else support in
  let prior =
    Dist.make
      (List.map
         (fun t -> (Array.of_list t, Rat.of_int (1 + Random.State.int rng 3)))
         support)
  in
  (* A fixed random cost table, pure in its arguments. *)
  let table = Hashtbl.create 64 in
  let cost t a i =
    let key = (Array.to_list t, Array.to_list a, i) in
    match Hashtbl.find_opt table key with
    | Some c -> c
    | None ->
      let c = Extended.of_int (Random.State.int rng 6) in
      Hashtbl.add table key c;
      c
  in
  Bayesian.make ~players ~n_types ~n_actions ~prior ~cost

(* Oracle: s is an equilibrium iff no player has ANY improving strategy
   (not just single-type deviations). *)
let equilibrium_oracle g s =
  let players = Bayesian.players g in
  let ok = ref true in
  for i = 0 to players - 1 do
    let current = Bayesian.ex_ante_cost g s i in
    let alternatives =
      Bi_ds.Combinat.functions ~dom:(Bayesian.n_types g i)
        (Array.init (Bayesian.n_actions g i) Fun.id)
    in
    Seq.iter
      (fun si' ->
        let s' = Array.copy s in
        s'.(i) <- si';
        if Extended.( < ) (Bayesian.ex_ante_cost g s' i) current then ok := false)
      alternatives
  done;
  !ok

let prop_equilibrium_predicate_matches_oracle =
  QCheck2.Test.make ~name:"single-type deviations suffice (predicate = oracle)"
    ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian seed in
      Seq.fold_left
        (fun acc s ->
          acc && Bayesian.is_bayesian_equilibrium g s = equilibrium_oracle g s)
        true (Bayesian.strategy_profiles g))

let prop_observation_2_2 =
  QCheck2.Test.make ~name:"observation 2.2: optC <= optP <= best-eqP <= worst-eqP"
    ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian seed in
      Measures.observation_2_2_holds (Measures.exhaustive g))

let prop_ex_ante_decomposes_over_interim =
  QCheck2.Test.make ~name:"ex-ante = sum_t P(t_i) interim" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian seed in
      let s = Bayesian.random_strategy_profile (Random.State.make [| seed |]) g in
      let ok = ref true in
      for i = 0 to Bayesian.players g - 1 do
        let marginal = Bayesian.type_marginal g i in
        let recomposed =
          Extended.sum
            (List.init (Bayesian.n_types g i) (fun ti ->
                 match Bayesian.interim_cost g s i ti with
                 | Some c -> Extended.mul_rat marginal.(ti) c
                 | None -> Extended.zero))
        in
        if not (Extended.equal recomposed (Bayesian.ex_ante_cost g s i)) then
          ok := false
      done;
      !ok)

(* Observation 2.1: lift a congestion-style potential through the prior.
   We use a two-resource congestion structure whose cost depends on the
   type profile through resource prices. *)
let prop_observation_2_1 =
  QCheck2.Test.make ~name:"observation 2.1: lifted potential is a Bayesian potential"
    ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let price t r = 1 + ((t.(0) + t.(1) + r + seed) mod 5) in
      let players = 2 in
      let n_types = [| 1 + Random.State.int rng 2; 1 + Random.State.int rng 2 |] in
      let all =
        List.of_seq
          (Bi_ds.Combinat.product [ List.init n_types.(0) Fun.id; List.init n_types.(1) Fun.id ])
      in
      let prior =
        Dist.make
          (List.map (fun t -> (Array.of_list t, Rat.of_int (1 + Random.State.int rng 3))) all)
      in
      (* action = which of two resources to use; fair sharing. *)
      let cost t a i =
        let load = if a.(0) = a.(1) then 2 else 1 in
        Extended.of_rat (Rat.of_ints (price t a.(i)) (if a.(0) = a.(1) then load else 1))
      in
      let g =
        Bayesian.make ~players ~n_types ~n_actions:[| 2; 2 |] ~prior ~cost
      in
      let rosenthal t a =
        (* sum over resources of price * H(load) *)
        let load r = (if a.(0) = r then 1 else 0) + (if a.(1) = r then 1 else 0) in
        Rat.sum
          (List.map
             (fun r -> Rat.mul (Rat.of_int (price t r)) (Rat.harmonic (load r)))
             [ 0; 1 ])
      in
      Bayesian.is_bayesian_potential g (Bayesian.bayesian_potential g rosenthal))

let prop_dynamics_on_potential_games =
  QCheck2.Test.make ~name:"BR dynamics converge on Bayesian potential games" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let price t r = 1 + ((t.(0) + 2 * t.(1) + 3 * r + seed) mod 7) in
      let n_types = [| 2; 2 |] in
      let all = [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ] in
      let prior =
        Dist.make (List.map (fun t -> (t, Rat.of_int (1 + Random.State.int rng 3))) all)
      in
      let cost t a i =
        let load = if a.(0) = a.(1) then 2 else 1 in
        Extended.of_rat (Rat.of_ints (price t a.(i)) load)
      in
      let g = Bayesian.make ~players:2 ~n_types ~n_actions:[| 2; 2 |] ~prior ~cost in
      match Bayesian.best_response_dynamics g [| [| 0; 0 |]; [| 0; 0 |] |] with
      | Some s -> Bayesian.is_bayesian_equilibrium g s
      | None -> false)

let prop_descent_reaches_at_most_opt =
  QCheck2.Test.make ~name:"benevolent descent upper-bounds and often finds optP"
    ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_bayesian seed in
      let opt, _ = Measures.opt_p_exhaustive g in
      let found, _ = Measures.opt_p_descent ~restarts:4 ~seed g in
      Extended.( <= ) opt found)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_equilibrium_predicate_matches_oracle;
      prop_observation_2_2;
      prop_ex_ante_decomposes_over_interim;
      prop_observation_2_1;
      prop_dynamics_on_potential_games;
      prop_descent_reaches_at_most_opt;
    ]

let () =
  Alcotest.run "bi_bayes"
    [
      ( "construction",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "played actions" `Quick test_played_actions;
          Alcotest.test_case "underlying game" `Quick test_underlying_game;
        ] );
      ( "costs",
        [ Alcotest.test_case "interim & marginal" `Quick test_interim_and_marginal ] );
      ( "measures",
        [
          Alcotest.test_case "degenerate = strategic" `Quick test_degenerate_matches_strategic;
          Alcotest.test_case "guess-the-type" `Quick test_guess_the_type_measures;
          Alcotest.test_case "equilibrium set" `Quick test_equilibrium_guess_game;
        ] );
      ("properties", qtests);
    ]

(* Tests for the extension modules: price of anarchy/stability, weighted
   NCS games, visibility interpolation, and the branch-and-bound optP
   solver. *)

open Bi_num
module Graph = Bi_graph.Graph
module Gen = Bi_graph.Gen
module Dist = Bi_prob.Dist
module Strategic = Bi_game.Strategic
module Anarchy = Bi_game.Anarchy
module Complete = Bi_ncs.Complete
module Weighted = Bi_ncs.Weighted
module Bncs = Bi_ncs.Bayesian_ncs
module Visibility = Bi_bayes.Visibility
module Bayesian = Bi_bayes.Bayesian

let rat = Alcotest.testable Rat.pp Rat.equal
let ext = Alcotest.testable Extended.pp Extended.equal

let r = Rat.of_int
let rr = Rat.of_ints

(* --- Price of anarchy / stability --- *)

let parallel_strategic () =
  Complete.to_strategic
    (Complete.make
       (Graph.make Undirected ~n:2 [ (0, 1, r 1); (0, 1, r 2) ])
       [| (0, 1); (0, 1) |])

let test_poa_pos_parallel () =
  let g = parallel_strategic () in
  (* best eq 1, worst eq 2, opt 1. *)
  Alcotest.(check (option rat)) "PoA = 2" (Some (r 2)) (Anarchy.price_of_anarchy g);
  Alcotest.(check (option rat)) "PoS = 1" (Some Rat.one) (Anarchy.price_of_stability g)

let test_poa_none_without_equilibria () =
  let pennies =
    Strategic.make ~players:2 ~actions:[| 2; 2 |] ~cost:(fun a i ->
        Extended.of_int (if (i = 0) = (a.(0) = a.(1)) then 0 else 1))
  in
  Alcotest.(check (option rat)) "no PoA" None (Anarchy.price_of_anarchy pennies);
  Alcotest.(check (option rat)) "no PoS" None (Anarchy.price_of_stability pennies)

let test_potential_minimizer_is_nash () =
  let ncs =
    Complete.make
      (Graph.make Undirected ~n:2 [ (0, 1, r 1); (0, 1, r 2) ])
      [| (0, 1); (0, 1) |]
  in
  let g = Complete.to_strategic ncs in
  let minimizer = Anarchy.potential_minimizer g ~potential:(Complete.potential ncs) in
  Alcotest.(check bool) "nash" true (Strategic.is_nash g minimizer);
  Alcotest.(check bool) "H(k) PoS bound" true
    (Anarchy.potential_method_pos_bound g ~potential:(Complete.potential ncs)
       ~bound:(Rat.harmonic 2))

let prop_pos_at_most_poa =
  QCheck2.Test.make ~name:"PoS <= PoA whenever both exist" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let graph = Gen.random_connected_graph rng ~n:(3 + Random.State.int rng 3) ~p:0.4 ~max_cost:5 in
      let n = Graph.n_vertices graph in
      let pairs = Array.init 2 (fun _ -> (Random.State.int rng n, Random.State.int rng n)) in
      let g = Complete.to_strategic (Complete.make graph pairs) in
      match Anarchy.price_of_anarchy g, Anarchy.price_of_stability g with
      | Some poa, Some pos -> Rat.( <= ) pos poa && Rat.( <= ) Rat.one pos
      | None, None -> true
      | _ -> false)

(* --- Weighted NCS --- *)

let weighted_parallel weights =
  Weighted.make
    (Graph.make Undirected ~n:2 [ (0, 1, r 1); (0, 1, r 2) ])
    ~pairs:[| (0, 1); (0, 1) |] ~weights

let test_weighted_degenerates_to_fair () =
  (* Equal weights = fair sharing: same costs as Complete. *)
  let w = weighted_parallel [| Rat.one; Rat.one |] in
  let c =
    Complete.make (Graph.make Undirected ~n:2 [ (0, 1, r 1); (0, 1, r 2) ])
      [| (0, 1); (0, 1) |]
  in
  Seq.iter
    (fun profile ->
      for i = 0 to 1 do
        Alcotest.check rat "same player cost"
          (Complete.player_cost c profile i)
          (Weighted.player_cost w profile i)
      done)
    (Bi_ds.Combinat.product_arrays [| [| 0; 1 |]; [| 0; 1 |] |]);
  Alcotest.(check (option rat)) "same PoA" (Some (r 2)) (Weighted.price_of_anarchy w)

let test_weighted_shares_proportional () =
  let w = weighted_parallel [| r 3; Rat.one |] in
  (* Both on the cheap edge: player 0 pays 3/4, player 1 pays 1/4. *)
  Alcotest.check rat "heavy share" (rr 3 4) (Weighted.player_cost w [| 0; 0 |] 0);
  Alcotest.check rat "light share" (rr 1 4) (Weighted.player_cost w [| 0; 0 |] 1);
  Alcotest.check rat "social cost unchanged" (r 1) (Weighted.social_cost w [| 0; 0 |])

let test_weighted_validation () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Weighted.make: weights must be positive") (fun () ->
      ignore (weighted_parallel [| Rat.zero; Rat.one |]));
  Alcotest.check_raises "length"
    (Invalid_argument "Weighted.make: weights length mismatch") (fun () ->
      ignore
        (Weighted.make
           (Graph.make Undirected ~n:2 [ (0, 1, r 1) ])
           ~pairs:[| (0, 1) |] ~weights:[| Rat.one; Rat.one |]))

let prop_weighted_best_response_exact =
  QCheck2.Test.make ~name:"weighted best response = enumeration argmin" ~count:50
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let graph = Gen.random_connected_graph rng ~n:(3 + Random.State.int rng 3) ~p:0.4 ~max_cost:5 in
      let n = Graph.n_vertices graph in
      let k = 2 in
      let pairs = Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n)) in
      let weights = Array.init k (fun _ -> Rat.of_int (1 + Random.State.int rng 4)) in
      let g = Weighted.make graph ~pairs ~weights in
      let profile = Array.init k (fun i -> Random.State.int rng (List.length (Weighted.paths g i))) in
      let ok = ref true in
      for i = 0 to k - 1 do
        let br = Weighted.best_response g profile i in
        let cost_with j =
          let p = Array.copy profile in
          p.(i) <- j;
          Weighted.player_cost g p i
        in
        let br_cost = cost_with br in
        List.iteri
          (fun j _ -> if Rat.( < ) (cost_with j) br_cost then ok := false)
          (Weighted.paths g i)
      done;
      !ok)

let prop_weighted_equilibria_sound =
  QCheck2.Test.make ~name:"weighted equilibria pass the deviation check" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let graph = Gen.random_connected_graph rng ~n:4 ~p:0.5 ~max_cost:4 in
      let pairs = [| (0, 3 mod Graph.n_vertices graph); (0, 2) |] in
      let weights = [| Rat.of_int (1 + Random.State.int rng 3); Rat.one |] in
      let g = Weighted.make graph ~pairs ~weights in
      Seq.fold_left
        (fun acc profile ->
          acc
          &&
          let i = Random.State.int rng 2 in
          let br = Weighted.best_response g profile i in
          let deviated = Array.copy profile in
          deviated.(i) <- br;
          Rat.( <= ) (Weighted.player_cost g profile i) (Weighted.player_cost g deviated i))
        true (Weighted.nash_equilibria g))

(* --- Visibility interpolation --- *)

let guess_game () =
  Bayesian.make ~players:2 ~n_types:[| 1; 2 |] ~n_actions:[| 2; 1 |]
    ~prior:(Dist.uniform [ [| 0; 0 |]; [| 0; 1 |] ])
    ~cost:(fun t a i ->
      if i = 1 then Extended.zero
      else if a.(0) = t.(1) then Extended.zero
      else Extended.one)

let test_visibility_endpoints () =
  let g = guess_game () in
  let report_opt_p, _ = Bi_bayes.Measures.opt_p_exhaustive g in
  Alcotest.check ext "0 informed = optP" report_opt_p
    (Visibility.optimum g ~informed:[| false; false |]);
  Alcotest.check ext "all informed = optC" (Bi_bayes.Measures.opt_c g)
    (Visibility.optimum g ~informed:[| true; true |]);
  (* Informing the guessing agent closes the whole gap. *)
  Alcotest.check ext "informing the gap-bearer" Extended.zero
    (Visibility.optimum g ~informed:[| true; false |])

let test_visibility_monotone () =
  let g = guess_game () in
  let series = Visibility.gap_closure g in
  Alcotest.(check int) "k+1 points" 3 (List.length series);
  let values = List.map snd series in
  let rec monotone = function
    | a :: (b :: _ as rest) -> Extended.( <= ) b a && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (monotone values)

let prop_visibility_sandwich =
  QCheck2.Test.make ~name:"optC <= opt(informed) <= optP" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let graph = Gen.random_connected_graph rng ~n:3 ~p:0.6 ~max_cost:4 in
      let n = Graph.n_vertices graph in
      let profile () = Array.init 2 (fun _ -> (0, Random.State.int rng n)) in
      let support = List.init 2 (fun _ -> profile ()) in
      let bg = Bncs.make graph ~prior:(Dist.uniform support) in
      let g = Bncs.game bg in
      let opt_p, _ = Bi_bayes.Measures.opt_p_exhaustive g in
      let opt_c = Bi_bayes.Measures.opt_c g in
      let mid = Visibility.optimum g ~informed:[| true; false |] in
      Extended.( <= ) opt_c mid && Extended.( <= ) mid opt_p)

(* --- Branch and bound --- *)

let prop_bnb_matches_exhaustive =
  QCheck2.Test.make ~name:"branch-and-bound optP = exhaustive optP" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let graph = Gen.random_connected_graph rng ~n:(3 + Random.State.int rng 2) ~p:0.5 ~max_cost:5 in
      let n = Graph.n_vertices graph in
      let profile () = Array.init 2 (fun _ -> (0, Random.State.int rng n)) in
      let support = List.init (1 + Random.State.int rng 2) (fun _ -> profile ()) in
      let g = Bncs.make graph ~prior:(Dist.uniform support) in
      let exhaustive, _ = Bncs.opt_p_exhaustive g in
      let bnb, _, certified = Bncs.opt_p_branch_and_bound g in
      certified && Extended.equal exhaustive bnb)

let test_bnb_on_constructions () =
  List.iter
    (fun (name, game, expected) ->
      let value, _, certified = Bncs.opt_p_branch_and_bound game in
      Alcotest.(check bool) (name ^ " certified") true certified;
      Alcotest.check ext (name ^ " value") expected value)
    [
      ( "anshelevich k=5",
        Bi_constructions.Anshelevich_game.game 5,
        Extended.of_rat (Bi_constructions.Anshelevich_game.predicted_worst_eq_p 5) );
      ( "affine m=2",
        Bi_constructions.Affine_game.game 2,
        Extended.of_rat (Bi_constructions.Affine_game.predicted_social_cost 2) );
    ]

let test_bnb_budget_gives_upper_bound () =
  let game = Bi_constructions.Gworst_game.bliss_game 5 in
  let value, _, certified = Bncs.opt_p_branch_and_bound ~node_budget:3 game in
  (* With a tiny budget the search cannot finish, but the incumbent from
     benevolent descent is still a sound upper bound. *)
  Alcotest.(check bool) "not certified" false certified;
  let exhaustive, _ = Bncs.opt_p_exhaustive game in
  Alcotest.(check bool) "upper bound" true (Extended.( <= ) exhaustive value)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pos_at_most_poa;
      prop_weighted_best_response_exact;
      prop_weighted_equilibria_sound;
      prop_visibility_sandwich;
      prop_bnb_matches_exhaustive;
    ]

let () =
  Alcotest.run "extensions"
    [
      ( "anarchy",
        [
          Alcotest.test_case "PoA/PoS on parallel edges" `Quick test_poa_pos_parallel;
          Alcotest.test_case "no pure equilibria" `Quick test_poa_none_without_equilibria;
          Alcotest.test_case "potential minimizer" `Quick test_potential_minimizer_is_nash;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "equal weights = fair sharing" `Quick
            test_weighted_degenerates_to_fair;
          Alcotest.test_case "proportional shares" `Quick test_weighted_shares_proportional;
          Alcotest.test_case "validation" `Quick test_weighted_validation;
        ] );
      ( "visibility",
        [
          Alcotest.test_case "endpoints = optP/optC" `Quick test_visibility_endpoints;
          Alcotest.test_case "monotone closure" `Quick test_visibility_monotone;
        ] );
      ( "branch_and_bound",
        [
          Alcotest.test_case "paper constructions" `Quick test_bnb_on_constructions;
          Alcotest.test_case "budget exhaustion" `Quick test_bnb_budget_gives_upper_bound;
        ] );
      ("properties", qtests);
    ]

(* Tests for the public facade and the plain-text reporting layer. *)

open Bayesian_ignorance
open Num

let test_facade_reexports () =
  (* The stable aliases resolve and interoperate. *)
  let g = Graphs.Gen.path_graph Graphs.Graph.Undirected 3 Rat.one in
  Alcotest.(check int) "graphs alias" 2 (Graphs.Graph.n_edges g);
  let d = Prob.Dist.uniform [ 1; 2 ] in
  Alcotest.(check int) "prob alias" 2 (List.length (Prob.Dist.support d));
  Alcotest.(check bool) "num alias" true (Rat.equal (Rat.of_ints 2 4) (Rat.of_ints 1 2))

let test_table_alignment () =
  let rendered =
    Report.table ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + separator + rows" 4 (List.length lines);
  (* All lines are padded to the same width. *)
  let widths = List.map String.length lines in
  List.iter
    (fun w -> Alcotest.(check int) "uniform width" (List.hd widths) w)
    widths

let test_cells () =
  Alcotest.(check string) "ext finite" "7/2 (~3.5000)"
    (Report.ext_cell (Extended.of_ints 7 2));
  Alcotest.(check string) "ext inf" "inf" (Report.ext_cell Extended.Inf);
  Alcotest.(check string) "opt none" "n/a" (Report.ext_opt_cell None);
  Alcotest.(check string) "ratio none" "undefined" (Report.ratio_cell None);
  Alcotest.(check string) "verdicts" "PASS FAIL"
    (Report.verdict true ^ " " ^ Report.verdict false)

let test_measures_rows () =
  let report =
    {
      Bayes.Measures.opt_p = Extended.one;
      best_eq_p = Some Extended.one;
      worst_eq_p = None;
      opt_c = Extended.zero;
      best_eq_c = None;
      worst_eq_c = Some Extended.Inf;
    }
  in
  let rows = Report.measures_rows report in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  Alcotest.(check (list string)) "worst-eqP row" [ "worst-eqP"; "n/a" ]
    (List.nth rows 2);
  Alcotest.(check (list string)) "worst-eqC row" [ "worst-eqC"; "inf" ]
    (List.nth rows 5)

let test_end_to_end_through_facade () =
  (* The README's quickstart snippet, verbatim semantics. *)
  let graph =
    Graphs.Graph.make Undirected ~n:2 [ (0, 1, Rat.one); (0, 1, Rat.of_ints 3 2) ]
  in
  let game =
    Ncs.Bayesian_ncs.make graph
      ~prior:(Prob.Dist.uniform [ [| (0, 1); (0, 1) |]; [| (0, 1); (0, 0) |] ])
  in
  let report = Ncs.Bayesian_ncs.measures_exhaustive game in
  Alcotest.(check bool) "optP = 1" true (Extended.equal Extended.one report.Bayes.Measures.opt_p);
  Alcotest.(check bool) "worst-eqC = 5/4" true
    (report.Bayes.Measures.worst_eq_c = Some (Extended.of_ints 5 4))

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "re-exports" `Quick test_facade_reexports;
          Alcotest.test_case "end-to-end" `Quick test_end_to_end_through_facade;
        ] );
      ( "report",
        [
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "measures rows" `Quick test_measures_rows;
        ] );
    ]

(* Tests for FRT tree embeddings: domination, leaf/center structure,
   expansion connectivity, and empirically bounded stretch. *)

open Bi_num
module Graph = Bi_graph.Graph
module Gen = Bi_graph.Gen
module Frt = Bi_embed.Frt

let rat = Alcotest.testable Rat.pp Rat.equal

let r = Rat.of_int

let sample_on seed g = Frt.sample (Random.State.make [| seed |]) g

let test_singleton_graph () =
  let g = Graph.make Undirected ~n:1 [] in
  let t = sample_on 1 g in
  Alcotest.(check int) "leaf exists" (Frt.leaf_of_vertex t 0) (Frt.leaf_of_vertex t 0);
  Alcotest.check rat "self distance" Rat.zero (Frt.tree_distance t 0 0)

let test_two_vertices () =
  let g = Graph.make Undirected ~n:2 [ (0, 1, r 5) ] in
  let t = sample_on 2 g in
  Alcotest.(check bool) "dominates" true (Frt.dominates t g);
  Alcotest.(check bool) "bounded blowup" true
    (Rat.( <= ) (Frt.tree_distance t 0 1) (r 200));
  Alcotest.(check int) "leaf center is the vertex" 0
    (Frt.center t (Frt.leaf_of_vertex t 0))

let test_domination_various_graphs () =
  List.iter
    (fun (name, g) ->
      for seed = 0 to 4 do
        let t = sample_on seed g in
        if not (Frt.dominates t g) then
          Alcotest.fail (Printf.sprintf "%s: tree fails to dominate (seed %d)" name seed)
      done)
    [
      ("path", Gen.path_graph Undirected 7 (r 2));
      ("cycle", Gen.cycle_graph Undirected 8 (r 1));
      ("grid", Gen.grid_graph 3 3 (r 1));
      ("complete", Gen.complete_graph 6 (r 3));
    ]

let test_center_path_endpoints () =
  let g = Gen.grid_graph 3 3 (r 1) in
  let t = sample_on 3 g in
  for u = 0 to 8 do
    for v = 0 to 8 do
      let path = Frt.center_path t u v in
      match path with
      | [] -> Alcotest.fail "nonempty"
      | first :: _ ->
        let last = List.nth path (List.length path - 1) in
        Alcotest.(check int) "starts at u" u first;
        Alcotest.(check int) "ends at v" v last
    done
  done

let test_expansion_connects () =
  let g = Gen.grid_graph 3 4 (r 1) in
  for seed = 0 to 3 do
    let t = sample_on seed g in
    for u = 0 to 11 do
      for v = 0 to 11 do
        let edges = Frt.expand_pair t g u v in
        if not (Graph.is_path_between g edges u v) then
          Alcotest.fail
            (Printf.sprintf "expansion misses %d -> %d (seed %d)" u v seed)
      done
    done
  done

let test_expansion_cost_bounded_by_tree_distance () =
  let g = Gen.grid_graph 3 3 (r 1) in
  for seed = 0 to 3 do
    let t = sample_on seed g in
    for u = 0 to 8 do
      for v = 0 to 8 do
        if u <> v then begin
          let cost = Graph.total_cost g (Frt.expand_pair t g u v) in
          if not (Rat.( <= ) cost (Frt.tree_distance t u v)) then
            Alcotest.fail "expansion dearer than the tree distance"
        end
      done
    done
  done

let test_average_stretch_reasonable () =
  (* Not a theorem-level bound, just a sanity ceiling: on a 12-cycle the
     average stretch over 32 sampled trees stays below ~4 log2 n. *)
  let g = Gen.cycle_graph Undirected 12 (r 1) in
  let rng = Random.State.make [| 99 |] in
  let total = ref 0.0 in
  let trees = 32 in
  for _ = 1 to trees do
    total := !total +. Rat.to_float (Frt.average_stretch (Frt.sample rng g) g)
  done;
  let mean = !total /. float_of_int trees in
  Alcotest.(check bool)
    (Printf.sprintf "mean stretch %.2f within ceiling" mean)
    true
    (mean >= 1.0 && mean < 4.0 *. (log (float_of_int 12) /. log 2.0))

let test_directed_rejected () =
  Alcotest.check_raises "directed" (Invalid_argument "Frt.sample: directed graph")
    (fun () ->
      ignore (sample_on 0 (Gen.path_graph Directed 3 (r 1))))

let test_disconnected_rejected () =
  let g = Graph.make Undirected ~n:3 [ (0, 1, r 1) ] in
  Alcotest.check_raises "disconnected" (Invalid_argument "Frt.sample: disconnected graph")
    (fun () -> ignore (sample_on 0 g))

let prop_domination_random =
  QCheck2.Test.make ~name:"random trees dominate random graphs" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 7 in
      let g = Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:8 in
      Frt.dominates (Frt.sample rng g) g)

let prop_expansion_random =
  QCheck2.Test.make ~name:"expansions connect on random graphs" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 5 in
      let g = Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:8 in
      let t = Frt.sample rng g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if not (Graph.is_path_between g (Frt.expand_pair t g u v) u v) then ok := false
        done
      done;
      !ok)

let qtests =
  List.map QCheck_alcotest.to_alcotest [ prop_domination_random; prop_expansion_random ]

let () =
  Alcotest.run "bi_embed"
    [
      ( "structure",
        [
          Alcotest.test_case "singleton" `Quick test_singleton_graph;
          Alcotest.test_case "two vertices" `Quick test_two_vertices;
          Alcotest.test_case "directed rejected" `Quick test_directed_rejected;
          Alcotest.test_case "disconnected rejected" `Quick test_disconnected_rejected;
        ] );
      ( "domination",
        [ Alcotest.test_case "standard graphs" `Quick test_domination_various_graphs ] );
      ( "expansion",
        [
          Alcotest.test_case "center paths" `Quick test_center_path_endpoints;
          Alcotest.test_case "connectivity" `Quick test_expansion_connects;
          Alcotest.test_case "cost vs tree distance" `Quick
            test_expansion_cost_bounded_by_tree_distance;
        ] );
      ( "stretch",
        [ Alcotest.test_case "average stretch ceiling" `Slow test_average_stretch_reasonable ] );
      ("properties", qtests);
    ]

(* Cross-cutting invariants of the cost-sharing model:

   - budget balance: Shapley payments sum exactly to the union cost, in
     complete-information, weighted, and Bayesian NCS games;
   - metric laws of the exact shortest-path layer;
   - the Lemma 3.2 punchline at order m = 3 (beyond exhaustive reach):
     sampled valid strategy profiles all cost exactly 1 + m^2/(m+1). *)

open Bi_num
module Graph = Bi_graph.Graph
module Gen = Bi_graph.Gen
module Dist = Bi_prob.Dist
module Complete = Bi_ncs.Complete
module Weighted = Bi_ncs.Weighted
module Bncs = Bi_ncs.Bayesian_ncs
module Bayesian = Bi_bayes.Bayesian

let ext = Alcotest.testable Extended.pp Extended.equal

(* --- Budget balance --- *)

let random_complete seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 3 in
  let graph = Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:7 in
  let k = 2 + Random.State.int rng 2 in
  let pairs =
    Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n))
  in
  (Complete.make graph pairs, rng)

let prop_budget_balance_complete =
  QCheck2.Test.make ~name:"fair sharing is budget balanced" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, rng = random_complete seed in
      let profile =
        Array.init (Complete.players g) (fun i ->
            Random.State.int rng (List.length (Complete.paths g i)))
      in
      let payments =
        Rat.sum
          (List.init (Complete.players g) (fun i -> Complete.player_cost g profile i))
      in
      Rat.equal payments (Complete.social_cost g profile))

let prop_budget_balance_weighted =
  QCheck2.Test.make ~name:"proportional sharing is budget balanced" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 3 in
      let graph = Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:7 in
      let k = 2 + Random.State.int rng 2 in
      let pairs =
        Array.init k (fun _ -> (Random.State.int rng n, Random.State.int rng n))
      in
      let weights = Array.init k (fun _ -> Rat.of_ints (1 + Random.State.int rng 9) (1 + Random.State.int rng 3)) in
      let g = Weighted.make graph ~pairs ~weights in
      let profile =
        Array.init k (fun i -> Random.State.int rng (List.length (Weighted.paths g i)))
      in
      let payments =
        Rat.sum (List.init k (fun i -> Weighted.player_cost g profile i))
      in
      Rat.equal payments (Weighted.social_cost g profile))

(* Bayesian budget balance: the sum of ex-ante costs equals the expected
   union cost, i.e. Bayesian.social_cost (which is defined as the sum)
   equals the direct expectation of the per-state union cost. *)
let prop_budget_balance_bayesian =
  QCheck2.Test.make ~name:"Bayesian NCS social cost = expected union cost" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 2 in
      let graph = Gen.random_connected_graph rng ~n ~p:0.45 ~max_cost:5 in
      let profile () = Array.init 2 (fun _ -> (0, Random.State.int rng n)) in
      let support = List.init (1 + Random.State.int rng 2) (fun _ -> profile ()) in
      let g = Bncs.make graph ~prior:(Dist.uniform support) in
      (* A random valid strategy profile. *)
      let s =
        Array.init (Bncs.players g) (fun i ->
            Array.init (Array.length (Bncs.types g i)) (fun ti ->
                let valid = Bncs.valid_actions g i ti in
                List.nth valid (Random.State.int rng (List.length valid))))
      in
      let game = Bncs.game g in
      let expected_union =
        Dist.expectation_ext
          (fun t ->
            let bought =
              List.concat
                (List.init (Bncs.players g) (fun i ->
                     (Bncs.actions g i).(s.(i).(t.(i)))))
            in
            Extended.of_rat (Graph.total_cost graph bought))
          (Bayesian.prior game)
      in
      Extended.equal (Bncs.social_cost g s) expected_union)

(* --- Metric laws of exact shortest paths --- *)

let prop_undirected_distance_symmetric =
  QCheck2.Test.make ~name:"undirected distances are symmetric" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected_graph rng ~n:(3 + Random.State.int rng 6) ~p:0.4 ~max_cost:9 in
      let d = Graph.all_pairs_distances g in
      let n = Graph.n_vertices g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if not (Extended.equal d.(u).(v) d.(v).(u)) then ok := false
        done
      done;
      !ok)

let prop_triangle_inequality =
  QCheck2.Test.make ~name:"shortest-path triangle inequality" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let kind = if Random.State.bool rng then Graph.Directed else Graph.Undirected in
      let g = Gen.random_graph rng ~kind ~n:(3 + Random.State.int rng 6) ~p:0.5 ~max_cost:9 in
      let d = Graph.all_pairs_distances g in
      let n = Graph.n_vertices g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for w = 0 to n - 1 do
            if Extended.( < ) (Extended.add d.(u).(v) d.(v).(w)) d.(u).(w) then
              ok := false
          done
        done
      done;
      !ok)

(* --- Lemma 3.2 at order 3, beyond exhaustive reach --- *)

let test_affine_m3_constant_cost () =
  let game = Bi_constructions.Affine_game.game 3 in
  let predicted =
    Extended.of_rat (Bi_constructions.Affine_game.predicted_social_cost 3)
  in
  let rng = Random.State.make [| 271828 |] in
  (* 20 random valid strategy profiles: by the conditional-uniformity
     argument of Lemma 3.2 every one of them costs 1 + 9/4 = 13/4. *)
  for _ = 1 to 20 do
    let s =
      Array.init (Bncs.players game) (fun i ->
          Array.init (Array.length (Bncs.types game i)) (fun ti ->
              let valid = Bncs.valid_actions game i ti in
              List.nth valid (Random.State.int rng (List.length valid))))
    in
    Alcotest.check ext "profile cost is the common value" predicted
      (Bncs.social_cost game s)
  done

let test_affine_m3_complete_side () =
  let game = Bi_constructions.Affine_game.game 3 in
  Alcotest.check ext "optC = 1" Extended.one (Bncs.opt_c game)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_budget_balance_complete;
      prop_budget_balance_weighted;
      prop_budget_balance_bayesian;
      prop_undirected_distance_symmetric;
      prop_triangle_inequality;
    ]

let () =
  Alcotest.run "invariants"
    [
      ( "lemma_3_2_order_3",
        [
          Alcotest.test_case "all sampled profiles cost 13/4" `Slow
            test_affine_m3_constant_cost;
          Alcotest.test_case "complete-information side" `Slow
            test_affine_m3_complete_side;
        ] );
      ("properties", qtests);
    ]

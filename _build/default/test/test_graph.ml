(* Tests for the graph substrate: construction, shortest paths (with a
   Bellman-Ford oracle), MST, path enumeration, Steiner DP, generators. *)

open Bi_num
open Bi_graph

let rat = Alcotest.testable Rat.pp Rat.equal
let ext = Alcotest.testable Extended.pp Extended.equal

let r = Rat.of_int
let rr n d = Rat.of_ints n d

(* A small weighted undirected graph:
     0 --1-- 1 --1-- 2
      \------3------/     (direct 0-2 edge of cost 3)
     plus 2 --1-- 3 *)
let small_undirected () =
  Graph.make Undirected ~n:4
    [ (0, 1, r 1); (1, 2, r 1); (0, 2, r 3); (2, 3, r 1) ]

let test_construction () =
  let g = small_undirected () in
  Alcotest.(check int) "vertices" 4 (Graph.n_vertices g);
  Alcotest.(check int) "edges" 4 (Graph.n_edges g);
  Alcotest.(check bool) "undirected" false (Graph.is_directed g);
  Alcotest.check rat "edge cost" (r 3) (Graph.cost g 2);
  Alcotest.check rat "total_cost dedups" (r 4) (Graph.total_cost g [ 0; 2; 0 ]);
  Alcotest.check_raises "vertex range" (Invalid_argument "Graph.make: vertex out of range")
    (fun () -> ignore (Graph.make Directed ~n:2 [ (0, 5, r 1) ]));
  Alcotest.check_raises "negative cost" (Invalid_argument "Graph.make: negative edge cost")
    (fun () -> ignore (Graph.make Directed ~n:2 [ (0, 1, r (-1)) ]))

let test_succ_orientation () =
  let gd = Graph.make Directed ~n:3 [ (0, 1, r 1); (1, 2, r 1) ] in
  Alcotest.(check int) "directed out-degree of 1" 1 (List.length (Graph.succ gd 1));
  let gu = Graph.make Undirected ~n:3 [ (0, 1, r 1); (1, 2, r 1) ] in
  Alcotest.(check int) "undirected degree of 1" 2 (List.length (Graph.succ gu 1))

let test_dijkstra_small () =
  let g = small_undirected () in
  Alcotest.check ext "0 to 2 via middle" (Extended.of_int 2) (Graph.distance g 0 2);
  Alcotest.check ext "0 to 3" (Extended.of_int 3) (Graph.distance g 0 3);
  Alcotest.check ext "self" Extended.zero (Graph.distance g 1 1);
  match Graph.shortest_path g 0 3 with
  | None -> Alcotest.fail "path exists"
  | Some ids ->
    Alcotest.(check int) "path length" 3 (List.length ids);
    Alcotest.check rat "path cost" (r 3) (Paths.path_cost g ids)

let test_unreachable () =
  let g = Graph.make Directed ~n:3 [ (0, 1, r 1) ] in
  Alcotest.check ext "no path 1->0" Extended.Inf (Graph.distance g 1 0);
  Alcotest.(check bool) "shortest_path none" true (Graph.shortest_path g 1 0 = None);
  Alcotest.(check bool) "shortest_path self" true (Graph.shortest_path g 2 2 = Some [])

let test_zero_cost_edges () =
  let g = Graph.make Directed ~n:3 [ (0, 1, Rat.zero); (1, 2, Rat.zero) ] in
  Alcotest.check ext "zero distance" Extended.zero (Graph.distance g 0 2)

let test_rational_weights () =
  (* Two fractional hops beat one unit hop exactly. *)
  let g = Graph.make Undirected ~n:3 [ (0, 1, rr 1 3); (1, 2, rr 1 3); (0, 2, rr 7 10) ] in
  Alcotest.check ext "exact comparison" (Extended.of_rat (rr 2 3)) (Graph.distance g 0 2)

let test_multigraph () =
  (* Parallel edges with different costs: the cheaper one wins. *)
  let g = Graph.make Undirected ~n:2 [ (0, 1, r 5); (0, 1, r 2) ] in
  Alcotest.check ext "parallel edges" (Extended.of_int 2) (Graph.distance g 0 1);
  Alcotest.(check int) "both edges present" 2 (Graph.n_edges g)

let random_graph_pair seed =
  let rng = Random.State.make [| seed |] in
  let kind = if Random.State.bool rng then Graph.Directed else Graph.Undirected in
  Gen.random_graph rng ~kind ~n:(2 + Random.State.int rng 12)
    ~p:(Random.State.float rng 0.6) ~max_cost:8

let prop_dijkstra_matches_bellman_ford =
  QCheck2.Test.make ~name:"dijkstra = bellman-ford on random graphs" ~count:150
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph_pair seed in
      let ok = ref true in
      for s = 0 to Graph.n_vertices g - 1 do
        let d1, _ = Graph.dijkstra g s in
        let d2 = Graph.bellman_ford g s in
        for v = 0 to Graph.n_vertices g - 1 do
          if not (Extended.equal d1.(v) d2.(v)) then ok := false
        done
      done;
      !ok)

let prop_shortest_path_cost_matches_distance =
  QCheck2.Test.make ~name:"path reconstruction matches distance" ~count:150
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph_pair seed in
      let n = Graph.n_vertices g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          match Graph.shortest_path g u v, Graph.distance g u v with
          | None, Extended.Inf -> ()
          | None, Extended.Fin _ | Some _, Extended.Inf -> ok := false
          | Some ids, Extended.Fin d ->
            if not (Rat.equal (Paths.path_cost g ids) d) then ok := false;
            if not (Graph.is_path_between g ids u v) then ok := false
        done
      done;
      !ok)

let test_path_endpoints () =
  let g = small_undirected () in
  (match Graph.shortest_path g 0 3 with
   | Some ids ->
     (match Graph.path_endpoints g ids with
      | Some (a, b) ->
        Alcotest.(check bool) "endpoints" true ((a, b) = (0, 3) || (a, b) = (3, 0))
      | None -> Alcotest.fail "is a path")
   | None -> Alcotest.fail "path exists");
  Alcotest.(check bool) "non-walk detected" true
    (Graph.path_endpoints g [ 0; 3 ] = None)

let test_connected_components () =
  let g = Graph.make Undirected ~n:5 [ (0, 1, r 1); (3, 4, r 1) ] in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ]
    (Graph.connected_components g)

let test_mst () =
  let g = small_undirected () in
  let ids, cost = Graph.minimum_spanning_tree g in
  Alcotest.(check int) "n-1 edges" 3 (List.length ids);
  Alcotest.check rat "mst cost" (r 3) cost;
  Alcotest.check_raises "directed rejected"
    (Invalid_argument "Graph.minimum_spanning_tree: directed graph") (fun () ->
      ignore (Graph.minimum_spanning_tree (Graph.make Directed ~n:2 [ (0, 1, r 1) ])))

let prop_mst_beats_random_spanning_sets =
  QCheck2.Test.make ~name:"mst no heavier than greedy alternatives" ~count:100
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected_graph rng ~n:(3 + Random.State.int rng 8) ~p:0.5 ~max_cost:9 in
      let _, mst_cost = Graph.minimum_spanning_tree g in
      (* Oracle: cost of DFS tree is an upper bound. *)
      let visited = Array.make (Graph.n_vertices g) false in
      let acc = ref Rat.zero in
      let rec dfs v =
        visited.(v) <- true;
        List.iter
          (fun (e, w) ->
            if not visited.(w) then begin
              acc := Rat.add !acc e.Graph.cost;
              dfs w
            end)
          (Graph.succ g v)
      in
      dfs 0;
      Rat.( <= ) mst_cost !acc)

let test_simple_paths () =
  let g = small_undirected () in
  let ps = Paths.simple_paths g 0 2 in
  (* 0-1-2, 0-2, 0-2 via 3? no edge 0-3, so exactly two. *)
  Alcotest.(check int) "two simple paths" 2 (List.length ps);
  Alcotest.(check (list (list int))) "self paths" [ [] ] (Paths.simple_paths g 1 1);
  let cycle = Gen.cycle_graph Undirected 5 (r 1) in
  Alcotest.(check int) "two around a cycle" 2 (List.length (Paths.simple_paths cycle 0 2));
  let limited = Paths.simple_paths ~max_hops:1 g 0 2 in
  Alcotest.(check int) "hop bound" 1 (List.length limited)

let test_simple_paths_limit () =
  let g = Gen.complete_graph 8 (r 1) in
  Alcotest.check_raises "limit guard" (Invalid_argument "Paths.simple_paths: limit exceeded")
    (fun () -> ignore (Paths.simple_paths ~limit:10 g 0 1))

let test_path_vertices () =
  let g = small_undirected () in
  match Graph.shortest_path g 0 3 with
  | Some ids ->
    Alcotest.(check (list int)) "vertex walk" [ 0; 1; 2; 3 ] (Paths.path_vertices g 0 ids)
  | None -> Alcotest.fail "path exists"

(* --- Steiner --- *)

let test_steiner_line () =
  let g = Gen.path_graph Undirected 5 (r 1) in
  Alcotest.check ext "span a path graph" (Extended.of_int 4)
    (Steiner_dp.steiner_cost g ~root:0 ~terminals:[ 4 ]);
  Alcotest.check ext "middle terminals" (Extended.of_int 4)
    (Steiner_dp.steiner_cost g ~root:0 ~terminals:[ 2; 4 ])

let test_steiner_star () =
  (* Star with expensive rim: optimum uses the hub. *)
  let g =
    Graph.make Undirected ~n:4
      [ (0, 1, r 1); (0, 2, r 1); (0, 3, r 1); (1, 2, r 10); (2, 3, r 10) ]
  in
  Alcotest.check ext "hub tree" (Extended.of_int 3)
    (Steiner_dp.steiner_cost g ~root:1 ~terminals:[ 2; 3 ])

let test_steiner_directed () =
  let g = Graph.make Directed ~n:4 [ (0, 1, r 1); (0, 2, r 1); (1, 3, r 1); (2, 3, r 5) ] in
  Alcotest.check ext "arborescence" (Extended.of_int 3)
    (Steiner_dp.steiner_cost g ~root:0 ~terminals:[ 1; 2; 3 ]);
  Alcotest.check ext "unreachable terminal" Extended.Inf
    (Steiner_dp.steiner_cost g ~root:1 ~terminals:[ 2 ])

let test_steiner_trivia () =
  let g = Gen.path_graph Undirected 3 (r 1) in
  Alcotest.check ext "no terminals" Extended.zero
    (Steiner_dp.steiner_cost g ~root:0 ~terminals:[]);
  Alcotest.check ext "root as terminal" Extended.zero
    (Steiner_dp.steiner_cost g ~root:0 ~terminals:[ 0; 0 ])

let prop_steiner_sandwich =
  (* MST-approx is within factor 2 of DW and never below it;
     DW is at least the eccentricity lower bound. *)
  QCheck2.Test.make ~name:"steiner: DW <= MST-approx <= 2*DW" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rng 6 in
      let g = Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:9 in
      let t = 1 + Random.State.int rng (min 4 (n - 1)) in
      let terminals = List.init t (fun i -> (i * 7 + 1) mod n) in
      let exact = Steiner_dp.steiner_cost g ~root:0 ~terminals in
      match Steiner_dp.steiner_mst_approx g ~terminals:(0 :: terminals), exact with
      | Some (_, approx), Extended.Fin ex ->
        Rat.( <= ) ex approx && Rat.( <= ) approx (Rat.mul_int ex 2)
      | None, _ | _, Extended.Inf -> false)

(* --- Generators --- *)

let test_generators_shapes () =
  let p = Gen.path_graph Directed 6 (r 2) in
  Alcotest.(check int) "path edges" 5 (Graph.n_edges p);
  let c = Gen.cycle_graph Undirected 6 (r 1) in
  Alcotest.(check int) "cycle edges" 6 (Graph.n_edges c);
  let k = Gen.complete_graph 6 (r 1) in
  Alcotest.(check int) "complete edges" 15 (Graph.n_edges k);
  let gr = Gen.grid_graph 3 4 (r 1) in
  Alcotest.(check int) "grid vertices" 12 (Graph.n_vertices gr);
  Alcotest.(check int) "grid edges" 17 (Graph.n_edges gr)

let test_random_connected () =
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 20 do
    let g = Gen.random_connected_graph rng ~n:8 ~p:0.2 ~max_cost:5 in
    Alcotest.(check int) "one component" 1 (List.length (Graph.connected_components g))
  done

let test_diamond () =
  let g0, s0, t0 = Gen.diamond_graph 0 in
  Alcotest.(check int) "level 0 edges" 1 (Graph.n_edges g0);
  Alcotest.check ext "level 0 distance" Extended.one (Graph.distance g0 s0 t0);
  let g1, s1, t1 = Gen.diamond_graph 1 in
  Alcotest.(check int) "level 1 vertices" 4 (Graph.n_vertices g1);
  Alcotest.(check int) "level 1 edges" 4 (Graph.n_edges g1);
  Alcotest.check ext "level 1 distance" Extended.one (Graph.distance g1 s1 t1);
  let g3, s3, t3 = Gen.diamond_graph 3 in
  Alcotest.(check int) "level 3 edges" 64 (Graph.n_edges g3);
  Alcotest.check ext "pole distance invariant" Extended.one (Graph.distance g3 s3 t3);
  (* Every edge at level j costs 2^-j. *)
  List.iter
    (fun e -> Alcotest.check rat "edge scale" (rr 1 8) e.Graph.cost)
    (Graph.edges g3)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dijkstra_matches_bellman_ford;
      prop_shortest_path_cost_matches_distance;
      prop_mst_beats_random_spanning_sets;
      prop_steiner_sandwich;
    ]

let () =
  Alcotest.run "bi_graph"
    [
      ( "construction",
        [
          Alcotest.test_case "make & accessors" `Quick test_construction;
          Alcotest.test_case "orientation" `Quick test_succ_orientation;
          Alcotest.test_case "multigraph" `Quick test_multigraph;
        ] );
      ( "shortest_paths",
        [
          Alcotest.test_case "dijkstra small" `Quick test_dijkstra_small;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "zero-cost edges" `Quick test_zero_cost_edges;
          Alcotest.test_case "rational weights" `Quick test_rational_weights;
        ] );
      ( "structure",
        [
          Alcotest.test_case "path endpoints" `Quick test_path_endpoints;
          Alcotest.test_case "components" `Quick test_connected_components;
          Alcotest.test_case "mst" `Quick test_mst;
          Alcotest.test_case "path vertices" `Quick test_path_vertices;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "simple paths" `Quick test_simple_paths;
          Alcotest.test_case "limit guard" `Quick test_simple_paths_limit;
        ] );
      ( "steiner",
        [
          Alcotest.test_case "line" `Quick test_steiner_line;
          Alcotest.test_case "star" `Quick test_steiner_star;
          Alcotest.test_case "directed arborescence" `Quick test_steiner_directed;
          Alcotest.test_case "trivial cases" `Quick test_steiner_trivia;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generators_shapes;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "diamond" `Quick test_diamond;
        ] );
      ("properties", qtests);
    ]

test/test_constructions.ml: Alcotest Bi_bayes Bi_constructions Bi_graph Bi_ncs Bi_num Bi_steiner Extended List Printf Random Rat Seq

test/test_game.ml: Alcotest Array Bi_game Bi_num Extended List QCheck2 QCheck_alcotest Random Rat Seq

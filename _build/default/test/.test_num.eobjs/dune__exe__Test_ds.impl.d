test/test_ds.ml: Alcotest Array Bi_ds Bitset Combinat Fun Heap List QCheck2 QCheck_alcotest Seq Stdlib Union_find

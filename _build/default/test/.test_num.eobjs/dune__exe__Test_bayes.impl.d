test/test_bayes.ml: Alcotest Array Bi_bayes Bi_ds Bi_game Bi_num Bi_prob Extended Fun Hashtbl List QCheck2 QCheck_alcotest Random Rat Seq

test/test_core.ml: Alcotest Bayes Bayesian_ignorance Extended Graphs List Ncs Num Prob Rat Report String

test/test_prob.ml: Alcotest Bi_num Bi_prob Extended Float List Printf QCheck2 QCheck_alcotest Random Rat

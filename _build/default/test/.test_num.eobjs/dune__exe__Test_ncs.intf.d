test/test_ncs.mli:

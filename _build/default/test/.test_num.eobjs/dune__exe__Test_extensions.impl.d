test/test_extensions.ml: Alcotest Array Bi_bayes Bi_constructions Bi_ds Bi_game Bi_graph Bi_ncs Bi_num Bi_prob Extended List QCheck2 QCheck_alcotest Random Rat Seq

test/test_minimax.ml: Alcotest Array Bi_graph Bi_minimax Bi_ncs Bi_num Bi_prob List Printf QCheck2 QCheck_alcotest Random Rat

test/test_graph.ml: Alcotest Array Bi_graph Bi_num Extended Gen Graph List Paths QCheck2 QCheck_alcotest Random Rat Steiner_dp

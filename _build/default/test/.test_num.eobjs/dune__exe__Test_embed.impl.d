test/test_embed.ml: Alcotest Bi_embed Bi_graph Bi_num List Printf QCheck2 QCheck_alcotest Random Rat

test/test_num.ml: Alcotest Bi_num Bigint Extended Float List Printf QCheck2 QCheck_alcotest Rat Stdlib String

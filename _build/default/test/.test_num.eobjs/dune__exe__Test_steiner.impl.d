test/test_steiner.ml: Alcotest Bi_graph Bi_num Bi_prob Bi_steiner Extended List QCheck2 QCheck_alcotest Random Rat

test/test_edge_cases.ml: Alcotest Bi_bayes Bi_ds Bi_graph Bi_ncs Bi_num Bi_prob Bigint Extended Fun List QCheck2 QCheck_alcotest Rat Seq Stdlib

test/test_invariants.ml: Alcotest Array Bi_bayes Bi_constructions Bi_graph Bi_ncs Bi_num Bi_prob Extended List QCheck2 QCheck_alcotest Random Rat

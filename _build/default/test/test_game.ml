(* Tests for strategic-form cost games and congestion games. *)

open Bi_num
module Strategic = Bi_game.Strategic
module Congestion = Bi_game.Congestion

let ext = Alcotest.testable Extended.pp Extended.equal
let rat = Alcotest.testable Rat.pp Rat.equal

(* Cost-minimization prisoner's dilemma: action 0 = cooperate, 1 = defect.
   Unique NE (1,1) with social cost 4; optimum (0,0) with social cost 2. *)
let prisoners_dilemma () =
  let table = [| [| (1, 1); (3, 0) |]; [| (0, 3); (2, 2) |] |] in
  Strategic.make ~players:2 ~actions:[| 2; 2 |] ~cost:(fun a i ->
      let c1, c2 = table.(a.(0)).(a.(1)) in
      Extended.of_int (if i = 0 then c1 else c2))

(* Cost matching pennies: no pure Nash equilibrium. *)
let matching_pennies () =
  Strategic.make ~players:2 ~actions:[| 2; 2 |] ~cost:(fun a i ->
      let matched = a.(0) = a.(1) in
      Extended.of_int (if (i = 0) = matched then 0 else 1))

(* Coordination game with a good and a bad equilibrium. *)
let coordination () =
  Strategic.make ~players:2 ~actions:[| 2; 2 |] ~cost:(fun a i ->
      ignore i;
      if a.(0) <> a.(1) then Extended.of_int 5
      else if a.(0) = 0 then Extended.of_int 1
      else Extended.of_int 2)

let test_pd_equilibrium () =
  let g = prisoners_dilemma () in
  Alcotest.(check bool) "DD is nash" true (Strategic.is_nash g [| 1; 1 |]);
  Alcotest.(check bool) "CC is not nash" false (Strategic.is_nash g [| 0; 0 |]);
  Alcotest.(check int) "unique equilibrium" 1
    (Seq.length (Strategic.nash_equilibria g));
  (match Strategic.best_equilibrium g with
   | Some (c, a) ->
     Alcotest.check ext "eq cost" (Extended.of_int 4) c;
     Alcotest.(check (array int)) "eq profile" [| 1; 1 |] a
   | None -> Alcotest.fail "PD has an equilibrium");
  let opt, profile = Strategic.optimum g in
  Alcotest.check ext "optimum" (Extended.of_int 2) opt;
  Alcotest.(check (array int)) "optimal profile" [| 0; 0 |] profile

let test_pd_dynamics () =
  let g = prisoners_dilemma () in
  match Strategic.best_response_dynamics g [| 0; 0 |] with
  | Some a -> Alcotest.(check (array int)) "converges to DD" [| 1; 1 |] a
  | None -> Alcotest.fail "dynamics diverged"

let test_matching_pennies () =
  let g = matching_pennies () in
  Alcotest.(check int) "no pure equilibrium" 0 (Seq.length (Strategic.nash_equilibria g));
  Alcotest.(check bool) "best none" true (Strategic.best_equilibrium g = None);
  Alcotest.(check bool) "worst none" true (Strategic.worst_equilibrium g = None)

let test_coordination_best_worst () =
  let g = coordination () in
  Alcotest.(check int) "two equilibria" 2 (Seq.length (Strategic.nash_equilibria g));
  (match Strategic.best_equilibrium g, Strategic.worst_equilibrium g with
   | Some (b, _), Some (w, _) ->
     Alcotest.check ext "best" (Extended.of_int 2) b;
     Alcotest.check ext "worst" (Extended.of_int 4) w
   | _ -> Alcotest.fail "equilibria exist")

let test_best_deviation () =
  let g = prisoners_dilemma () in
  (match Strategic.best_deviation g [| 0; 0 |] 0 with
   | Some (a, c) ->
     Alcotest.(check int) "deviate to defect" 1 a;
     Alcotest.check ext "deviation cost" Extended.zero c
   | None -> Alcotest.fail "cooperation is not stable");
  Alcotest.(check bool) "no deviation at NE" true
    (Strategic.best_deviation g [| 1; 1 |] 0 = None)

let test_infinite_costs () =
  (* A player with an infeasible action: equilibria avoid it. *)
  let g =
    Strategic.make ~players:1 ~actions:[| 2 |] ~cost:(fun a _ ->
        if a.(0) = 0 then Extended.Inf else Extended.of_int 3)
  in
  match Strategic.best_equilibrium g with
  | Some (c, a) ->
    Alcotest.check ext "finite equilibrium" (Extended.of_int 3) c;
    Alcotest.(check (array int)) "feasible action" [| 1 |] a
  | None -> Alcotest.fail "equilibrium exists"

let test_validation () =
  Alcotest.check_raises "empty actions"
    (Invalid_argument "Strategic.make: empty action space") (fun () ->
      ignore
        (Strategic.make ~players:1 ~actions:[| 0 |] ~cost:(fun _ _ -> Extended.zero)));
  Alcotest.check_raises "player count"
    (Invalid_argument "Strategic.make: need at least one player") (fun () ->
      ignore
        (Strategic.make ~players:0 ~actions:[||] ~cost:(fun _ _ -> Extended.zero)))

(* --- Congestion games --- *)

(* Two players, two resources with fair sharing: r0 costs 2, r1 costs 3. *)
let two_resource_game () =
  Congestion.make ~n_resources:2
    ~usage_cost:(fun r load ->
      Rat.of_ints (if r = 0 then 2 else 3) load)
    ~action_sets:[| [| [ 0 ]; [ 1 ] |]; [| [ 0 ]; [ 1 ] |] |]

let test_congestion_costs () =
  let g = two_resource_game () in
  Alcotest.(check (array int)) "loads both on r0" [| 2; 0 |] (Congestion.loads g [| 0; 0 |]);
  Alcotest.check rat "shared cost" Rat.one (Congestion.player_cost g [| 0; 0 |] 0);
  Alcotest.check rat "alone cost" (Rat.of_int 3) (Congestion.player_cost g [| 0; 1 |] 1)

let test_congestion_equilibria () =
  let s = Congestion.to_strategic (two_resource_game ()) in
  let eqs = List.of_seq (Strategic.nash_equilibria s) in
  (* Both-on-r0 (social 2) and both-on-r1 (social 3) are equilibria;
     the splits are not. *)
  Alcotest.(check int) "two equilibria" 2 (List.length eqs);
  match Strategic.best_equilibrium s, Strategic.worst_equilibrium s with
  | Some (b, _), Some (w, _) ->
    Alcotest.check ext "best eq" (Extended.of_int 2) b;
    Alcotest.check ext "worst eq" (Extended.of_int 3) w
  | _ -> Alcotest.fail "equilibria exist"

let test_rosenthal_potential_exact () =
  let g = two_resource_game () in
  let s = Congestion.to_strategic g in
  Alcotest.(check bool) "rosenthal is exact potential" true
    (Strategic.is_exact_potential s (Congestion.rosenthal_potential g))

let test_rosenthal_values () =
  let g = two_resource_game () in
  (* Both on r0: 2/1 + 2/2 = 3. *)
  Alcotest.check rat "H-sum" (Rat.of_int 3) (Congestion.rosenthal_potential g [| 0; 0 |]);
  (* Split: 2 + 3. *)
  Alcotest.check rat "split" (Rat.of_int 5) (Congestion.rosenthal_potential g [| 0; 1 |])

let test_congestion_validation () =
  Alcotest.check_raises "bad resource"
    (Invalid_argument "Congestion.make: resource id out of range") (fun () ->
      ignore
        (Congestion.make ~n_resources:1
           ~usage_cost:(fun _ _ -> Rat.one)
           ~action_sets:[| [| [ 3 ] |] |]))

(* Random congestion game generator for property tests. *)
let random_congestion seed =
  let rng = Random.State.make [| seed |] in
  let n_resources = 2 + Random.State.int rng 3 in
  let costs = Array.init n_resources (fun _ -> 1 + Random.State.int rng 9) in
  let players = 2 + Random.State.int rng 2 in
  let random_action () =
    let size = 1 + Random.State.int rng 2 in
    List.init size (fun _ -> Random.State.int rng n_resources)
  in
  let action_sets =
    Array.init players (fun _ ->
        Array.init (1 + Random.State.int rng 2) (fun _ -> random_action ()))
  in
  Congestion.make ~n_resources
    ~usage_cost:(fun r load -> Rat.of_ints costs.(r) load)
    ~action_sets

let prop_congestion_has_pure_ne =
  QCheck2.Test.make ~name:"congestion games have pure equilibria (Rosenthal)" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let s = Congestion.to_strategic (random_congestion seed) in
      Strategic.best_equilibrium s <> None)

let prop_congestion_potential_exact =
  QCheck2.Test.make ~name:"rosenthal potential is exact on random games" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = random_congestion seed in
      Strategic.is_exact_potential (Congestion.to_strategic g)
        (Congestion.rosenthal_potential g))

let prop_dynamics_reach_nash =
  QCheck2.Test.make ~name:"best-response dynamics reach a Nash equilibrium" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let s = Congestion.to_strategic (random_congestion seed) in
      let start = Array.make (Strategic.players s) 0 in
      match Strategic.best_response_dynamics s start with
      | Some a -> Strategic.is_nash s a
      | None -> false)

let prop_optimum_lower_bounds_equilibria =
  QCheck2.Test.make ~name:"optimum <= every equilibrium cost" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let s = Congestion.to_strategic (random_congestion seed) in
      let opt, _ = Strategic.optimum s in
      Seq.fold_left
        (fun acc a -> acc && Extended.( <= ) opt (Strategic.social_cost s a))
        true (Strategic.nash_equilibria s))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_congestion_has_pure_ne;
      prop_congestion_potential_exact;
      prop_dynamics_reach_nash;
      prop_optimum_lower_bounds_equilibria;
    ]

let () =
  Alcotest.run "bi_game"
    [
      ( "strategic",
        [
          Alcotest.test_case "prisoner's dilemma" `Quick test_pd_equilibrium;
          Alcotest.test_case "dynamics" `Quick test_pd_dynamics;
          Alcotest.test_case "matching pennies" `Quick test_matching_pennies;
          Alcotest.test_case "coordination best/worst" `Quick test_coordination_best_worst;
          Alcotest.test_case "best deviation" `Quick test_best_deviation;
          Alcotest.test_case "infinite costs" `Quick test_infinite_costs;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "costs & loads" `Quick test_congestion_costs;
          Alcotest.test_case "equilibria" `Quick test_congestion_equilibria;
          Alcotest.test_case "potential exactness" `Quick test_rosenthal_potential_exact;
          Alcotest.test_case "potential values" `Quick test_rosenthal_values;
          Alcotest.test_case "validation" `Quick test_congestion_validation;
        ] );
      ("properties", qtests);
    ]

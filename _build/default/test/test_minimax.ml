(* Tests for matrix games (fictitious play with certified bounds) and
   Section 4: R(phi) = R~(phi), and the public-randomness mixture. *)

open Bi_num
module Mg = Bi_minimax.Matrix_game
module S4 = Bi_minimax.Section4
module Dist = Bi_prob.Dist
module Bncs = Bi_ncs.Bayesian_ncs

let rat = Alcotest.testable Rat.pp Rat.equal

let r = Rat.of_int
let rr = Rat.of_ints

let m rows = Mg.make (Array.of_list (List.map Array.of_list rows))

let test_pure_saddle () =
  (* Row minimizes; entry (1,0)=2 is max in its row? Build a matrix with
     a clear saddle: row 1 = [2;3], row 0 = [4;5]: row player picks row
     1; column player picks column 1: value 3. *)
  let g = m [ [ r 4; r 5 ]; [ r 2; r 3 ] ] in
  (match Mg.pure_saddle g with
   | Some (i, j) ->
     Alcotest.(check (pair int int)) "saddle" (1, 1) (i, j);
     Alcotest.check rat "value" (r 3) (Mg.entry g i j)
   | None -> Alcotest.fail "saddle exists");
  let sol = Mg.solve g in
  Alcotest.check rat "lower = upper at saddle" sol.Mg.lower sol.Mg.upper

let test_matching_pennies_value () =
  (* Classic: entries 0/1, value 1/2, no pure saddle. *)
  let g = m [ [ r 1; r 0 ]; [ r 0; r 1 ] ] in
  Alcotest.(check bool) "no pure saddle" true (Mg.pure_saddle g = None);
  let sol = Mg.solve ~iterations:4000 g in
  Alcotest.(check bool) "bracket straddles 1/2" true
    (Rat.( <= ) sol.Mg.lower (rr 1 2) && Rat.( <= ) (rr 1 2) sol.Mg.upper);
  Alcotest.(check bool) "bracket is tight-ish" true
    (Rat.( <= ) (Rat.sub sol.Mg.upper sol.Mg.lower) (rr 1 10))

let test_guarantees_are_certified () =
  let g = m [ [ r 1; r 0 ]; [ r 0; r 1 ] ] in
  let sol = Mg.solve ~iterations:2000 g in
  (* By definition of the certificates. *)
  Alcotest.check rat "upper = row guarantee" (Mg.row_guarantee g sol.Mg.row_strategy)
    sol.Mg.upper;
  Alcotest.check rat "lower = col guarantee" (Mg.col_guarantee g sol.Mg.col_strategy)
    sol.Mg.lower

let test_mixture_validation () =
  let g = m [ [ r 1; r 0 ]; [ r 0; r 1 ] ] in
  Alcotest.check_raises "bad sum" (Invalid_argument "Matrix_game: mixture does not sum to one")
    (fun () -> ignore (Mg.row_guarantee g [| rr 1 2; rr 1 3 |]));
  Alcotest.check_raises "length" (Invalid_argument "Matrix_game: mixture length mismatch")
    (fun () -> ignore (Mg.row_guarantee g [| Rat.one |]))

let prop_fictitious_play_brackets =
  QCheck2.Test.make ~name:"fictitious play: lower <= upper, both certified" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 2 + Random.State.int rng 3 in
      let cols = 2 + Random.State.int rng 3 in
      let mat =
        Array.init rows (fun _ ->
            Array.init cols (fun _ -> Rat.of_int (Random.State.int rng 9)))
      in
      let g = Mg.make mat in
      let sol = Mg.solve ~iterations:800 g in
      Rat.( <= ) sol.Mg.lower sol.Mg.upper
      && Rat.equal (Mg.row_guarantee g sol.Mg.row_strategy) sol.Mg.upper
      && Rat.equal (Mg.col_guarantee g sol.Mg.col_strategy) sol.Mg.lower)

(* --- Section 4 --- *)

(* The guess-the-type structure as a cost matrix: strategies = the two
   actions of the guessing agent; type profiles = the two types.
   K(s,t) = 1 if the guess matches, 2 otherwise; v(t) = 1.  Value of the
   normalized game = 3/2, achieved by the uniform mixture. *)
let guess_phi () = S4.make [| [| r 1; r 2 |]; [| r 2; r 1 |] |]

let test_section4_guess_game () =
  let phi = guess_phi () in
  Alcotest.check rat "v(t)" Rat.one (S4.opt_of_type phi 0);
  let sol = S4.r_tilde ~iterations:4000 phi in
  Alcotest.(check bool) "R~ bracket around 3/2" true
    (Rat.( <= ) sol.Mg.lower (rr 3 2) && Rat.( <= ) (rr 3 2) sol.Mg.upper);
  (* The uniform mixture guarantees exactly 3/2 against every prior. *)
  let q = [| rr 1 2; rr 1 2 |] in
  Alcotest.check rat "uniform q guarantee" (rr 3 2) (S4.randomized_guarantee phi q);
  (* Point priors achieve ratio 2 deterministically... for pure
     strategies; the prior-ratio (best strategy per prior) is 3/2 at the
     uniform prior and 1 at point priors. *)
  Alcotest.check rat "point prior ratio" Rat.one
    (S4.ratio_under_prior phi [| Rat.one; Rat.zero |]);
  Alcotest.check rat "uniform prior ratio" (rr 3 2)
    (S4.ratio_under_prior phi [| rr 1 2; rr 1 2 |])

let test_proposition_4_2 () =
  let phi = guess_phi () in
  let lo, hi = S4.r_star_bracket ~iterations:3000 ~steps:12 phi in
  (* R(phi) = 3/2 must sit inside the bracket, matching R~(phi). *)
  Alcotest.(check bool)
    (Printf.sprintf "bracket [%s, %s] contains 3/2" (Rat.to_string lo) (Rat.to_string hi))
    true
    (Rat.( <= ) lo (rr 3 2) && Rat.( <= ) (rr 3 2) hi);
  Alcotest.(check bool) "bracket reasonably tight" true
    (Rat.( <= ) (Rat.sub hi lo) (rr 1 4))

let test_positive_costs_required () =
  Alcotest.check_raises "zero cost"
    (Invalid_argument "Section4.make: costs must be positive") (fun () ->
      ignore (S4.make [| [| Rat.zero |] |]))

let test_of_bayesian_ncs () =
  (* Two parallel edges, unknown partner (as in test_ncs). *)
  let graph =
    Bi_graph.Graph.make Undirected ~n:2 [ (0, 1, r 1); (0, 1, rr 3 2) ]
  in
  let g =
    Bncs.make graph
      ~prior:(Dist.uniform [ [| (0, 1); (0, 1) |]; [| (0, 1); (0, 0) |] ])
  in
  let phi = S4.of_bayesian_ncs g in
  Alcotest.(check int) "type profiles = support" 2 (S4.n_type_profiles phi);
  Alcotest.(check bool) "several strategy profiles" true (S4.n_strategies phi > 4);
  (* Both type profiles have optimum 1 (edge e0). *)
  Alcotest.check rat "v(t0)" Rat.one (S4.opt_of_type phi 0);
  Alcotest.check rat "v(t1)" Rat.one (S4.opt_of_type phi 1);
  (* There is a single strategy profile optimal for every type profile
     simultaneously (everyone on e0), so R(phi) = 1. *)
  let sol = S4.r_tilde ~iterations:1000 phi in
  Alcotest.check rat "R~ = 1 exactly" Rat.one sol.Mg.upper;
  Alcotest.check rat "lower too" Rat.one sol.Mg.lower

let prop_randomized_guarantee_beats_best_pure_sometimes =
  (* Structural sanity: the optimal mixture's guarantee is never worse
     than the best single strategy profile's worst-case ratio. *)
  QCheck2.Test.make ~name:"mixture guarantee <= best pure worst-case" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 2 + Random.State.int rng 3 in
      let cols = 2 + Random.State.int rng 3 in
      let mat =
        Array.init rows (fun _ ->
            Array.init cols (fun _ -> Rat.of_int (1 + Random.State.int rng 8)))
      in
      let phi = S4.make mat in
      let sol = S4.r_tilde ~iterations:600 phi in
      let normalized = S4.normalized phi in
      let pure_worst i = Array.fold_left Rat.max Rat.zero normalized.(i) in
      let best_pure = ref (pure_worst 0) in
      for i = 1 to rows - 1 do
        best_pure := Rat.min !best_pure (pure_worst i)
      done;
      Rat.( <= ) (S4.randomized_guarantee phi sol.Mg.row_strategy) !best_pure)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_fictitious_play_brackets; prop_randomized_guarantee_beats_best_pure_sometimes ]

let () =
  Alcotest.run "bi_minimax"
    [
      ( "matrix_game",
        [
          Alcotest.test_case "pure saddle" `Quick test_pure_saddle;
          Alcotest.test_case "matching pennies" `Quick test_matching_pennies_value;
          Alcotest.test_case "certified guarantees" `Quick test_guarantees_are_certified;
          Alcotest.test_case "mixture validation" `Quick test_mixture_validation;
        ] );
      ( "section4",
        [
          Alcotest.test_case "guess game" `Quick test_section4_guess_game;
          Alcotest.test_case "proposition 4.2" `Slow test_proposition_4_2;
          Alcotest.test_case "positive costs" `Quick test_positive_costs_required;
          Alcotest.test_case "from Bayesian NCS" `Quick test_of_bayesian_ncs;
        ] );
      ("properties", qtests);
    ]

(* The diamond-graph adversary behind Lemma 3.5: online Steiner tree
   algorithms pay Omega(log n) against a request distribution whose
   offline optimum is always exactly 1.

   Each level doubles the graph resolution; the adversary reveals one
   random midpoint per active edge, level by level.  Both the adaptive
   greedy algorithm and the oblivious shortest-path algorithm (which is
   what a Bayesian NCS strategy profile amounts to) see their expected
   cost grow linearly in the level — i.e. logarithmically in the graph
   size.

   Run with: dune exec examples/online_steiner_adversary.exe *)

open Bayesian_ignorance
module Diamond = Steiner.Diamond
module Online = Steiner.Online

let () =
  Format.printf "Diamond adversary: E[ALG] vs OPT = 1 per level@.@.";
  let exact_rows =
    List.map
      (fun j ->
        let d = Diamond.build j in
        let n = Graphs.Graph.n_vertices (Diamond.graph d) in
        [
          string_of_int j;
          string_of_int n;
          Report.rat_cell (Diamond.expected_cost d Online.greedy);
          Report.rat_cell (Diamond.expected_cost d Online.oblivious_shortest_path);
          "exact";
        ])
      [ 0; 1; 2; 3 ]
  in
  let rng = Random.State.make [| 2024 |] in
  let sampled_rows =
    List.map
      (fun j ->
        let d = Diamond.build j in
        let n = Graphs.Graph.n_vertices (Diamond.graph d) in
        let samples = 40 in
        [
          string_of_int j;
          string_of_int n;
          Report.float_cell (Diamond.mean_cost rng ~samples d Online.greedy);
          Report.float_cell
            (Diamond.mean_cost rng ~samples d Online.oblivious_shortest_path);
          Printf.sprintf "%d samples" samples;
        ])
      [ 4; 5 ]
  in
  print_endline
    (Report.table
       ~header:[ "level"; "vertices"; "greedy"; "oblivious"; "mode" ]
       (exact_rows @ sampled_rows));
  Format.printf
    "@.E[ALG] grows by a constant per level (log n) while OPT = 1:@.";
  Format.printf
    "the reduction of Lemma 3.5 turns this into a Bayesian NCS game@.";
  Format.printf "with optP/optC = Omega(log n) on undirected graphs.@."

(* How much is a global view worth, agent by agent?

   The paper compares two extremes — every agent sees only her own type
   (optP) or everyone sees the realized state (optC).  This example
   turns that comparison into a dial: benevolent agents are granted
   global views one at a time, and we watch the optimum walk from optP
   down to optC.

   On the diamond game, informing the single uncertain agent closes the
   whole gap at once; on the G_worst game the gap sits in the
   equilibrium structure, not the optimum, so the dial stays flat.

   Run with: dune exec examples/visibility_dial.exe *)

open Bayesian_ignorance
module Bncs = Ncs.Bayesian_ncs
module Visibility = Bayes.Visibility

let () =
  Format.printf "Optimum social cost as agents gain global views:@.@.";
  let rows =
    List.concat_map
      (fun (name, game) ->
        let bayes = Bncs.game game in
        let series = Visibility.gap_closure bayes in
        List.map
          (fun (m, v) -> [ name; string_of_int m; Report.ext_cell v ])
          series)
      [
        ("diamond level 1", snd (Constructions.Diamond_game.game 1));
        ("two commuters", begin
           let graph =
             Graphs.Graph.make Undirected ~n:2
               [ (0, 1, Num.Rat.one); (0, 1, Num.Rat.of_ints 3 2) ]
           in
           Bncs.make graph
             ~prior:
               (Prob.Dist.uniform [ [| (0, 1); (0, 1) |]; [| (0, 1); (0, 0) |] ])
         end);
        ("gworst-bliss k=3", Constructions.Gworst_game.bliss_game 3);
      ]
  in
  print_endline (Report.table ~header:[ "game"; "#informed"; "optimum" ] rows);
  Format.printf
    "@.0 informed = optP, all informed = optC.  Where the drop happens@.";
  Format.printf
    "identifies WHOSE ignorance the system is actually paying for.@."

(* Quickstart: build a small Bayesian network cost-sharing game, compute
   all six Bayesian-ignorance quantities and the three ratios.

   Scenario: two commuters connect home (vertex 0) to work (vertex 1);
   there is a cheap road (cost 1) and a scenic road (cost 3/2).  The
   second commuter works from home half the time — and the first one
   never knows which day it is.

   Run with: dune exec examples/quickstart.exe *)

open Bayesian_ignorance
open Num

let () =
  let graph =
    Graphs.Graph.make Undirected ~n:2
      [ (0, 1, Rat.one); (0, 1, Rat.of_ints 3 2) ]
  in
  (* The common prior over (source, destination) pairs, one per agent:
     agent 1 always commutes; agent 0 stays home with probability 1/2. *)
  let prior =
    Prob.Dist.uniform
      [ [| (0, 1); (0, 1) |] (* both commute *); [| (0, 1); (0, 0) |] ]
    (* agent 1 stays home *)
  in
  let game = Ncs.Bayesian_ncs.make graph ~prior in
  Format.printf "A two-commuter Bayesian NCS game on two parallel roads.@.@.";
  let report = Ncs.Bayesian_ncs.measures_exhaustive game in
  print_endline
    (Report.table ~header:[ "quantity"; "value" ] (Report.measures_rows report));
  let ratios = Bayes.Measures.ratios_of_report report in
  Format.printf "@.Ignorance ratios:@.";
  print_endline
    (Report.table
       ~header:[ "ratio"; "value" ]
       [
         [ "optP/optC"; Report.ratio_cell ratios.Bayes.Measures.r_opt ];
         [ "best-eqP/best-eqC"; Report.ratio_cell ratios.Bayes.Measures.r_best_eq ];
         [ "worst-eqP/worst-eqC"; Report.ratio_cell ratios.Bayes.Measures.r_worst_eq ];
       ]);
  Format.printf
    "@.Here worst-eqP/worst-eqC < 1: with local views the commuters can@.";
  Format.printf
    "never coordinate on the scenic road, so ignorance is (mildly) bliss.@."

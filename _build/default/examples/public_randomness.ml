(* Public random bits replace the common prior (Section 4, Lemma 4.1).

   Benevolent agents who cannot see the common prior can commit to a
   randomized strategy profile q (shared random bits) and still match
   the worst-prior optP/optC ratio R(phi).  This example computes q on
   the two-commuter game and on a "guess the type" game, and verifies
   the guarantee prior by prior.

   Run with: dune exec examples/public_randomness.exe *)

open Bayesian_ignorance
open Num
module S4 = Minimax.Section4
module Mg = Minimax.Matrix_game

let show_phi name phi =
  Format.printf "== %s ==@." name;
  Format.printf "strategy profiles: %d, type profiles: %d@." (S4.n_strategies phi)
    (S4.n_type_profiles phi);
  let sol = S4.r_tilde ~iterations:4000 phi in
  Format.printf "R~(phi) bracket: [%s, %s]@."
    (Rat.to_string sol.Mg.lower)
    (Rat.to_string sol.Mg.upper);
  let q = sol.Mg.row_strategy in
  Format.printf "public-randomness mixture q: %s@."
    (String.concat ", "
       (List.filter_map
          (fun (i, w) ->
            if Rat.is_zero w then None
            else Some (Printf.sprintf "s%d:%s" i (Rat.to_string w)))
          (List.mapi (fun i w -> (i, w)) (Array.to_list q))));
  Format.printf "worst-prior guarantee of q: %s  (<= upper bound: %s)@."
    (Rat.to_string (S4.randomized_guarantee phi q))
    (Rat.to_string sol.Mg.upper);
  let lo, hi = S4.r_star_bracket ~iterations:2000 ~steps:10 phi in
  Format.printf "independent R(phi) bracket (Prop 4.2 check): [%s, %s]@.@."
    (Rat.to_string lo) (Rat.to_string hi)

let () =
  (* Guess-the-type: one agent must match an unseen binary type, paying
     1 when right and 2 when wrong.  Rows are her two pure strategies,
     columns the two types; v(t) = 1, so R(phi) = 3/2 via the uniform
     mixture. *)
  let guess =
    S4.make
      [|
        [| Rat.of_int 1; Rat.of_int 2 |];
        [| Rat.of_int 2; Rat.of_int 1 |];
      |]
  in
  show_phi "guess the type" guess;
  let graph =
    Graphs.Graph.make Undirected ~n:2
      [ (0, 1, Rat.one); (0, 1, Rat.of_ints 3 2) ]
  in
  let game =
    Ncs.Bayesian_ncs.make graph
      ~prior:
        (Prob.Dist.uniform [ [| (0, 1); (0, 1) |]; [| (0, 1); (0, 0) |] ])
  in
  show_phi "two-commuter NCS game" (S4.of_bayesian_ncs game);
  Format.printf
    "In both cases a single mixture q achieves the optimal ratio against@.";
  Format.printf
    "every prior simultaneously: knowing p is unnecessary for benevolent@.";
  Format.printf "agents once public coins are available (Lemma 4.1).@."

examples/ignorance_is_bliss.mli:

examples/ignorance_is_bliss.ml: Bayes Bayesian_ignorance Constructions Extended Format List Ncs Num Rat Report

examples/visibility_dial.mli:

examples/online_steiner_adversary.ml: Bayesian_ignorance Format Graphs List Printf Random Report Steiner

examples/visibility_dial.ml: Bayes Bayesian_ignorance Constructions Format Graphs List Ncs Num Prob Report

examples/public_randomness.mli:

examples/quickstart.mli:

examples/quickstart.ml: Bayes Bayesian_ignorance Format Graphs Ncs Num Prob Rat Report

examples/public_randomness.ml: Array Bayesian_ignorance Format Graphs List Minimax Ncs Num Printf Prob Rat String

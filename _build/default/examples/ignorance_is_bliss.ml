(* "Ignorance is bliss" (Remark 1 / Lemma 3.3 of the paper): a Bayesian
   NCS game where EVERY equilibrium of agents with local views is
   asymptotically cheaper than EVERY equilibrium of agents with global
   views.

   The game is the Fig. 1 construction: k-1 agents with destinations
   y_1..y_{k-1}, direct edges of cost 1/i, a hub z reachable for 1 + eps
   with free onward edges, and a k-th agent who needs the hub only half
   the time.  The possibility that she shares the hub edge drags
   everyone onto it; with global views, the days she is absent see the
   expensive "everyone direct" equilibrium (cost H(k-1)) instead.

   Run with: dune exec examples/ignorance_is_bliss.exe *)

open Bayesian_ignorance
open Num
module An = Constructions.Anshelevich_game
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures

let () =
  Format.printf
    "worst Bayesian equilibrium vs best complete-information equilibrium@.";
  Format.printf "on the Fig. 1 game (exact values for k <= 7, closed form beyond):@.@.";
  let rows_small =
    List.map
      (fun k ->
        let m = Bncs.measures_exhaustive (An.game k) in
        let cell = Report.ext_opt_cell in
        [
          string_of_int k;
          cell m.Measures.worst_eq_p;
          cell m.Measures.best_eq_c;
          (match m.Measures.worst_eq_p, m.Measures.best_eq_c with
           | Some (Extended.Fin p), Some (Extended.Fin c) ->
             Report.rat_cell (Rat.div p c)
           | _ -> "n/a");
        ])
      [ 3; 4; 5; 6; 7 ]
  in
  let rows_large =
    List.map
      (fun k ->
        [
          string_of_int k;
          Report.float_cell (An.predicted_worst_eq_p_float k);
          Report.float_cell (An.predicted_best_eq_c_float k);
          Report.float_cell (An.predicted_ratio_float k);
        ])
      [ 16; 64; 256; 1024 ]
  in
  print_endline
    (Report.table
       ~header:[ "k"; "worst-eqP"; "best-eqC"; "worst-eqP/best-eqC" ]
       (rows_small @ rows_large));
  Format.printf
    "@.The ratio decays like O(1/log k): all equilibria under ignorance@.";
  Format.printf "beat all equilibria under global views (Remark 1).@."

(* Full reproduction harness for "Bayesian ignorance" (Alon, Emek,
   Feldman, Tennenholtz; PODC 2010 / TCS 2012).

   Regenerates every evaluation artifact of the paper:
   - Table 1 (the twelve ignorance bounds), row by row;
   - the two figures' constructions as k-series (Fig. 1: G_k;
     Fig. 2: G_worst);
   - the universal laws (Observation 2.2, Lemmas 3.1 and 3.8) on random
     corpora;
   - Section 4 (Proposition 4.2 and Lemma 4.1) numerically;
   plus bechamel micro-benchmarks of the computational kernels.

   Usage: dune exec bench/main.exe [-- section ...]
   where section is any of: table1 figures checks sec4 ablations micro.
   With no arguments, everything runs. *)

let sections =
  [
    ("table1", Table1.run);
    ("figures", Figures.run);
    ("checks", Checks.run);
    ("sec4", Sec4.run);
    ("ablations", Ablations.run);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  print_endline "Bayesian ignorance: reproduction benchmark suite";
  print_endline "(paper values are asymptotic; verdicts check the shape)";
  print_endline "";
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat ", " (List.map fst sections));
        exit 1)
    requested

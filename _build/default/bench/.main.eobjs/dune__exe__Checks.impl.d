bench/checks.ml: Bayes Bayesian_ignorance Corpus List Ncs Printf Report

bench/figures.ml: Bayes Bayesian_ignorance Constructions Extended List Ncs Num Printf Rat Report

bench/sec4.ml: Bayesian_ignorance Graphs Minimax Ncs Num Printf Prob Rat Report

bench/main.mli:

bench/main.ml: Ablations Array Checks Figures List Micro Printf Sec4 String Sys Table1

bench/corpus.ml: Array Bayesian_ignorance Graphs List Ncs Num Prob Random

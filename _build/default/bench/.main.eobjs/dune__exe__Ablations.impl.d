bench/ablations.ml: Array Bayes Bayesian_ignorance Constructions Extended Graphs List Minimax Ncs Num Printf Rat Report Sys

bench/table1.ml: Array Bayes Bayesian_ignorance Constructions Corpus Embed Extended Float Graphs List Ncs Num Printf Prob Random Rat Report Stdlib Steiner String

(* Certified-tier benchmark: the six ignorance quantities at k = 20..50
   via potential descent, branch-and-bound and smoothness brackets,
   cross-checked value-identical against the exhaustive solver on the
   full overlap window (k <= 7, every family the exhaustive tier can
   finish).  Every certificate is machine-checked before a row is
   printed.

   Structured rows go to their own sink, BENCH_certified.json, so
   downstream tooling never has to filter the exhaustive results file.
   A crosscheck mismatch or a rejected certificate exits nonzero — CI
   runs this section as a gate. *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures
module Solve = Certify.Solve
module Sink = Engine.Sink

let out_file = "BENCH_certified.json"

let build name k =
  match Constructions.Registry.build name k with
  | Ok g -> g
  | Error e -> failwith ("certified bench: " ^ e)

let ext_str v =
  match Extended.to_rat_opt v with
  | Some r -> Rat.to_string r
  | None -> "inf"

let bracket_cell (b : Solve.bracket) =
  if Extended.equal b.Solve.lo b.Solve.hi then ext_str b.Solve.lo
  else Printf.sprintf "[%s, %s]" (ext_str b.Solve.lo) (ext_str b.Solve.hi)

let certify_checked ~pool name k game =
  let cert = Solve.certify ~pool game in
  (match Solve.check game cert with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "certified bench: %s k=%d: certificate rejected: %s\n" name
      k e;
    exit 1);
  cert

(* The overlap window: every (family, k) point the exhaustive solver
   finishes in seconds.  Anshelevich's G_k stays tractable to k = 7; the
   two G_worst windows blow past 10^6 valid profiles at k = 6. *)
let crosscheck_points =
  List.map (fun k -> ("anshelevich", k)) [ 2; 3; 4; 5; 6; 7 ]
  @ List.concat_map
      (fun k -> [ ("gworst-curse", k); ("gworst-bliss", k) ])
      [ 2; 3; 4; 5 ]

let same_opt = Option.equal Extended.equal

let crosscheck ~pool ~sink =
  print_endline "=== Certified vs exhaustive: the overlap window (k <= 7) ===";
  print_endline "";
  let all_ok = ref true in
  let rows =
    List.map
      (fun (name, k) ->
        let game = build name k in
        let exact = (Bncs.analyze ~pool game).Bncs.report in
        let cert = certify_checked ~pool name k game in
        let c = Solve.report cert in
        let ok =
          Extended.equal exact.Measures.opt_p c.Measures.opt_p
          && same_opt exact.Measures.best_eq_p c.Measures.best_eq_p
          && same_opt exact.Measures.worst_eq_p c.Measures.worst_eq_p
          && Extended.equal exact.Measures.opt_c c.Measures.opt_c
          && same_opt exact.Measures.best_eq_c c.Measures.best_eq_c
          && same_opt exact.Measures.worst_eq_c c.Measures.worst_eq_c
        in
        if not ok then begin
          all_ok := false;
          Printf.eprintf
            "certified bench: %s k=%d: certified values differ from \
             exhaustive\n"
            name k
        end;
        [
          name;
          string_of_int k;
          Report.ext_cell c.Measures.opt_p;
          Report.ext_opt_cell c.Measures.best_eq_p;
          Report.ext_opt_cell c.Measures.worst_eq_p;
          Report.ext_cell c.Measures.opt_c;
          Report.ext_opt_cell c.Measures.best_eq_c;
          Report.ext_opt_cell c.Measures.worst_eq_c;
          Report.verdict ok;
        ])
      crosscheck_points
  in
  let header =
    [
      "family"; "k"; "optP"; "best-eqP"; "worst-eqP"; "optC"; "best-eqC";
      "worst-eqC"; "matches";
    ]
  in
  print_endline (Report.table ~header rows);
  Sink.table sink ~section:"certified-crosscheck" ~header rows;
  print_endline "";
  !all_ok

let beyond ~pool ~sink =
  print_endline
    "=== Beyond enumeration: certified brackets at k = 20..50 ===";
  print_endline "";
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun name ->
            let game = build name k in
            let cert, span =
              Engine.Timer.timed (fun () ->
                  certify_checked ~pool name k game)
            in
            let opt : Certify.Bnb.outcome = cert.Solve.opt_p in
            [
              name;
              string_of_int k;
              bracket_cell cert.Solve.opt_p_bracket;
              bracket_cell cert.Solve.best_eq_p;
              bracket_cell cert.Solve.worst_eq_p;
              bracket_cell cert.Solve.opt_c;
              bracket_cell cert.Solve.best_eq_c;
              bracket_cell cert.Solve.worst_eq_c;
              Printf.sprintf "%d nodes%s" opt.Certify.Bnb.nodes
                (match opt.Certify.Bnb.certificate with
                | Some _ -> ""
                | None -> " (open)");
              Format.asprintf "%a" Engine.Timer.pp_seconds
                span.Engine.Timer.seconds;
            ])
          [ "anshelevich"; "gworst-curse"; "gworst-bliss" ])
      [ 20; 30; 40; 50 ]
  in
  let header =
    [
      "family"; "k"; "optP"; "best-eqP"; "worst-eqP"; "optC"; "best-eqC";
      "worst-eqC"; "bnb"; "time";
    ]
  in
  print_endline (Report.table ~header rows);
  Sink.table sink ~section:"certified-table1" ~header rows;
  print_endline "";
  print_endline
    "Every row carries a machine-checked certificate: descent margins for";
  print_endline
    "each equilibrium, a closed branch-and-bound ledger for each optimum,";
  print_endline
    "and (lambda, mu)-smoothness for the analytic bracket ends."

let run ~pool ~sink:_ ~cache:_ =
  let sink = Sink.create out_file in
  let ok =
    Fun.protect
      ~finally:(fun () -> Sink.close sink)
      (fun () ->
        let ok = crosscheck ~pool ~sink in
        beyond ~pool ~sink;
        ok)
  in
  Printf.printf "\n(structured certified rows -> %s)\n" out_file;
  if not ok then begin
    Printf.eprintf
      "certified bench: crosscheck failed — certified values must equal \
       exhaustive on the overlap window\n";
    exit 1
  end

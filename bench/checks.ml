(* Universal-law checks over random corpora: Observation 2.2's chain,
   Lemma 3.1 (worst-eqP <= k optC) and Lemma 3.8
   (best-eqP <= H(k) optP), on both orientations. *)

open Bayesian_ignorance
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures

let check ~pool ~label games =
  let total = List.length games in
  let obs22 = ref 0 and l31 = ref 0 and l38 = ref 0 in
  List.iter
    (fun g ->
      let m = Bncs.measures_exhaustive ~pool g in
      if Measures.observation_2_2_holds m then incr obs22;
      if Bncs.lemma_3_1_bound_holds ~pool g then incr l31;
      if Bncs.lemma_3_8_bound_holds ~pool g then incr l38)
    games;
  [
    [
      Printf.sprintf "Observation 2.2 (%s)" label;
      "optC <= optP <= best-eqP <= worst-eqP";
      Printf.sprintf "%d/%d games" !obs22 total;
      Report.verdict (!obs22 = total);
    ];
    [
      Printf.sprintf "Lemma 3.1 (%s)" label;
      "worst-eqP <= k optC";
      Printf.sprintf "%d/%d games" !l31 total;
      Report.verdict (!l31 = total);
    ];
    [
      Printf.sprintf "Lemma 3.8 (%s)" label;
      "best-eqP <= H(k) optP";
      Printf.sprintf "%d/%d games" !l38 total;
      Report.verdict (!l38 = total);
    ];
  ]

let run ~pool ~sink ~cache:_ =
  print_endline "=== Universal laws on random Bayesian NCS corpora ===";
  print_endline "";
  let rows =
    check ~pool ~label:"directed" (Corpus.games ~pool ~directed:true ~count:25 ())
    @ check ~pool ~label:"undirected" (Corpus.games ~pool ~directed:false ~count:25 ())
  in
  print_endline
    (Report.table ~header:[ "law"; "statement"; "holds on"; "verdict" ] rows);
  Engine.Sink.table sink ~section:"checks"
    ~header:[ "law"; "statement"; "holds on"; "verdict" ]
    rows;
  print_endline ""

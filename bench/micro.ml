(* Bechamel micro-benchmarks of the core solvers: one entry per heavy
   computational kernel used by the reproduction. *)

open Bayesian_ignorance
open Num
open Bechamel
open Toolkit

let grid = Graphs.Gen.grid_graph 8 8 Rat.one

let dijkstra_test =
  Test.make ~name:"dijkstra 8x8 grid"
    (Staged.stage (fun () -> ignore (Graphs.Graph.dijkstra grid 0)))

let steiner_test =
  Test.make ~name:"steiner DP, 5 terminals"
    (Staged.stage (fun () ->
         ignore
           (Graphs.Steiner_dp.steiner_cost grid ~root:0
              ~terminals:[ 7; 56; 63; 27; 36 ])))

let equilibria_test =
  let game = Constructions.Gworst_game.bliss_game 5 in
  Test.make ~name:"bayesian equilibria, G_worst k=5"
    (Staged.stage (fun () ->
         ignore (Seq.length (Ncs.Bayesian_ncs.bayesian_equilibria game))))

let fictitious_play_test =
  let phi =
    Minimax.Section4.make
      (Array.init 6 (fun i ->
           Array.init 6 (fun j -> Rat.of_int (1 + ((i * 7) + (j * 3)) mod 9))))
  in
  Test.make ~name:"fictitious play 6x6, 500 rounds"
    (Staged.stage (fun () ->
         ignore (Minimax.Section4.r_tilde ~iterations:500 phi)))

let frt_test =
  let g = Graphs.Gen.grid_graph 4 4 Rat.one in
  let rng = Random.State.make [| 1 |] in
  Test.make ~name:"FRT tree on 4x4 grid"
    (Staged.stage (fun () -> ignore (Embed.Frt.sample rng g)))

let bigint_test =
  let a = Bigint.factorial 60 and b = Bigint.factorial 40 in
  Test.make ~name:"bigint divmod 60!/40!"
    (Staged.stage (fun () -> ignore (Bigint.divmod a b)))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        bigint_test; dijkstra_test; steiner_test; equilibria_test;
        fictitious_play_test; frt_test;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 256) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  (Analyze.merge ols instances [ results ], raw_results)

let () =
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

let run ~pool:_ ~sink:_ =
  print_endline "=== Micro-benchmarks (bechamel) ===";
  print_endline "";
  let results, _ = benchmark () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  img (window, results) |> Notty_unix.eol |> Notty_unix.output_image;
  print_endline ""

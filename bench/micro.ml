(* Bechamel micro-benchmarks of the core solvers: one entry per heavy
   computational kernel used by the reproduction. *)

open Bayesian_ignorance
open Num
open Bechamel
open Toolkit

let grid = Graphs.Gen.grid_graph 8 8 Rat.one

let dijkstra_test =
  Test.make ~name:"dijkstra 8x8 grid"
    (Staged.stage (fun () -> ignore (Graphs.Graph.dijkstra grid 0)))

let steiner_test =
  Test.make ~name:"steiner DP, 5 terminals"
    (Staged.stage (fun () ->
         ignore
           (Graphs.Steiner_dp.steiner_cost grid ~root:0
              ~terminals:[ 7; 56; 63; 27; 36 ])))

let equilibria_test =
  let game = Constructions.Gworst_game.bliss_game 5 in
  Test.make ~name:"bayesian equilibria, G_worst k=5"
    (Staged.stage (fun () ->
         ignore (Seq.length (Ncs.Bayesian_ncs.bayesian_equilibria game))))

let fictitious_play_test =
  let phi =
    Minimax.Section4.make
      (Array.init 6 (fun i ->
           Array.init 6 (fun j -> Rat.of_int (1 + ((i * 7) + (j * 3)) mod 9))))
  in
  Test.make ~name:"fictitious play 6x6, 500 rounds"
    (Staged.stage (fun () ->
         ignore (Minimax.Section4.r_tilde ~iterations:500 phi)))

let frt_test =
  let g = Graphs.Gen.grid_graph 4 4 Rat.one in
  let rng = Random.State.make [| 1 |] in
  Test.make ~name:"FRT tree on 4x4 grid"
    (Staged.stage (fun () -> ignore (Embed.Frt.sample rng g)))

let bigint_test =
  let a = Bigint.factorial 60 and b = Bigint.factorial 40 in
  Test.make ~name:"bigint divmod 60!/40!"
    (Staged.stage (fun () -> ignore (Bigint.divmod a b)))

(* Arithmetic kernels: the solvers spend their inner loops in Rat.add and
   Rat.compare on tiny values (per-edge shared costs), with occasional
   large operands from harmonic sums and powers.  Both regimes are
   measured so the fast-path/big split stays visible in the trajectory. *)

let small_rats = Array.init 24 (fun i -> Rat.of_ints 1 (i + 1))

let rat_add_small_test =
  Test.make ~name:"rat add, small operands"
    (Staged.stage (fun () ->
         ignore (Array.fold_left Rat.add Rat.zero small_rats)))

let large_a = Rat.pow (Rat.of_ints 7 3) 40
let large_b = Rat.pow (Rat.of_ints 11 5) 35

let rat_add_large_test =
  Test.make ~name:"rat add, large operands"
    (Staged.stage (fun () ->
         ignore (Rat.add (Rat.add large_a large_b) (Rat.add large_b large_a))))

let rat_cmp_small_test =
  let x = Rat.of_ints 355 113 and y = Rat.of_ints 22 7 in
  let u = Rat.of_ints 5 6 and v = Rat.of_ints 13 15 in
  Test.make ~name:"rat compare, small operands"
    (Staged.stage (fun () ->
         ignore (Rat.compare x y);
         ignore (Rat.compare u v);
         ignore (Rat.compare x u)))

let rat_cmp_large_test =
  let x = Rat.pow (Rat.of_ints 7 3) 40 and y = Rat.pow (Rat.of_ints 15 7) 38 in
  Test.make ~name:"rat compare, large operands"
    (Staged.stage (fun () -> ignore (Rat.compare x y)))

(* Per-profile cost kernel: social cost of every profile of a 4-agent
   complete-information NCS game (4 paths each: two parallel edges and
   two detours) — the innermost evaluation of the exhaustive solvers. *)
let profile_cost_game =
  let graph =
    Graphs.Graph.make Undirected ~n:4
      [
        (0, 1, Rat.one); (0, 1, Rat.of_ints 3 2); (0, 2, Rat.of_ints 1 2);
        (2, 1, Rat.one); (0, 3, Rat.of_ints 2 3); (3, 1, Rat.of_ints 1 3);
      ]
  in
  Ncs.Complete.make graph [| (0, 1); (0, 1); (0, 1); (0, 1) |]

let profile_cost_test =
  Test.make ~name:"profile cost, 4 agents x 4 paths"
    (Staged.stage (fun () ->
         ignore
           (Seq.fold_left
              (fun acc p -> Rat.add acc (Ncs.Complete.social_cost profile_cost_game p))
              Rat.zero
              (Ncs.Complete.profile_space profile_cost_game))))

(* Cache-service kernels: the canonical fingerprint (serialize + hash a
   game description) and a service hit (mutex + LRU lookup + recency
   touch) — the per-request costs a warm analysis pays instead of the
   exhaustive solve. *)

let fingerprint_game = Constructions.Gworst_game.bliss_game 5

let fingerprint_test =
  Test.make ~name:"canonical fingerprint, G_worst k=5"
    (Staged.stage (fun () ->
         ignore (Cache.Fingerprint.of_game fingerprint_game)))

let cache_hit_test =
  let service = Cache.Service.create ~capacity:64 () in
  let key = Cache.Fingerprint.of_game fingerprint_game in
  Cache.Service.insert service key
    (Cache.Service.Payload (Engine.Sink.Str "warm"));
  Test.make ~name:"cache hit, in-memory LRU"
    (Staged.stage (fun () -> ignore (Cache.Service.find service key)))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        bigint_test; rat_add_small_test; rat_add_large_test;
        rat_cmp_small_test; rat_cmp_large_test; profile_cost_test;
        dijkstra_test; steiner_test; equilibria_test;
        fictitious_play_test; frt_test; fingerprint_test; cache_hit_test;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 256) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  (Analyze.merge ols instances [ results ], raw_results)

let () =
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

(* Persist the per-kernel OLS estimates as JSON lines so the bench
   trajectory has machine-readable points to compare successive PRs
   against (BENCH_micro.json, sibling of BENCH_results.json). *)
let persist_estimates results =
  let micro_sink = Engine.Sink.create "BENCH_micro.json" in
  Engine.Sink.emit micro_sink
    [ ("record", Str "run"); ("suite", Str "micro kernels") ];
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
   | None -> ()
   | Some by_name ->
     let rows =
       Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_name []
     in
     List.iter
       (fun (name, ols) ->
         let ns_per_run =
           match Analyze.OLS.estimates ols with
           | Some (e :: _) -> Engine.Sink.Float e
           | _ -> Engine.Sink.Null
         in
         let r2 =
           match Analyze.OLS.r_square ols with
           | Some r -> Engine.Sink.Float r
           | None -> Engine.Sink.Null
         in
         Engine.Sink.emit micro_sink
           [
             ("record", Str "micro");
             ("name", Str name);
             ("ns_per_run", ns_per_run);
             ("r_square", r2);
           ])
       (List.sort compare rows));
  Engine.Sink.close micro_sink

let run ~pool:_ ~sink:_ ~cache:_ =
  print_endline "=== Micro-benchmarks (bechamel) ===";
  print_endline "";
  let results, _ = benchmark () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  img (window, results) |> Notty_unix.eol |> Notty_unix.output_image;
  persist_estimates results;
  print_endline "(per-kernel OLS estimates -> BENCH_micro.json)";
  print_endline ""

(* Bechamel micro-benchmarks of the core solvers: one entry per heavy
   computational kernel used by the reproduction. *)

open Bayesian_ignorance
open Num
open Bechamel
open Toolkit

let grid = Graphs.Gen.grid_graph 8 8 Rat.one

let dijkstra_test =
  Test.make ~name:"dijkstra 8x8 grid"
    (Staged.stage (fun () -> ignore (Graphs.Graph.dijkstra grid 0)))

let steiner_test =
  Test.make ~name:"steiner DP, 5 terminals"
    (Staged.stage (fun () ->
         ignore
           (Graphs.Steiner_dp.steiner_cost grid ~root:0
              ~terminals:[ 7; 56; 63; 27; 36 ])))

let equilibria_test =
  let game = Constructions.Gworst_game.bliss_game 5 in
  Test.make ~name:"bayesian equilibria, G_worst k=5"
    (Staged.stage (fun () ->
         ignore (Seq.length (Ncs.Bayesian_ncs.bayesian_equilibria game))))

let fictitious_play_test =
  let phi =
    Minimax.Section4.make
      (Array.init 6 (fun i ->
           Array.init 6 (fun j -> Rat.of_int (1 + ((i * 7) + (j * 3)) mod 9))))
  in
  Test.make ~name:"fictitious play 6x6, 500 rounds"
    (Staged.stage (fun () ->
         ignore (Minimax.Section4.r_tilde ~iterations:500 phi)))

let frt_test =
  let g = Graphs.Gen.grid_graph 4 4 Rat.one in
  let rng = Random.State.make [| 1 |] in
  Test.make ~name:"FRT tree on 4x4 grid"
    (Staged.stage (fun () -> ignore (Embed.Frt.sample rng g)))

let bigint_test =
  let a = Bigint.factorial 60 and b = Bigint.factorial 40 in
  Test.make ~name:"bigint divmod 60!/40!"
    (Staged.stage (fun () -> ignore (Bigint.divmod a b)))

(* Arithmetic kernels: the solvers spend their inner loops in Rat.add and
   Rat.compare on tiny values (per-edge shared costs), with occasional
   large operands from harmonic sums and powers.  Both regimes are
   measured so the fast-path/big split stays visible in the trajectory. *)

let small_rats = Array.init 24 (fun i -> Rat.of_ints 1 (i + 1))

let rat_add_small_test =
  Test.make ~name:"rat add, small operands"
    (Staged.stage (fun () ->
         ignore (Array.fold_left Rat.add Rat.zero small_rats)))

let large_a = Rat.pow (Rat.of_ints 7 3) 40
let large_b = Rat.pow (Rat.of_ints 11 5) 35

let rat_add_large_test =
  Test.make ~name:"rat add, large operands"
    (Staged.stage (fun () ->
         ignore (Rat.add (Rat.add large_a large_b) (Rat.add large_b large_a))))

let rat_cmp_small_test =
  let x = Rat.of_ints 355 113 and y = Rat.of_ints 22 7 in
  let u = Rat.of_ints 5 6 and v = Rat.of_ints 13 15 in
  Test.make ~name:"rat compare, small operands"
    (Staged.stage (fun () ->
         ignore (Rat.compare x y);
         ignore (Rat.compare u v);
         ignore (Rat.compare x u)))

(* A single fixed comparison is too little work per run: the ~0.25 µs
   signal drowns in loop and clock overhead and the OLS fit collapses
   (r² ≈ 0.10 in earlier trajectories).  Walk a batch of fresh,
   pairwise-distinct large operands instead — every run does 32 full
   cross-multiplication compares on multi-limb magnitudes, and the
   accumulated sum keeps the work observable.  (The kernel is named
   [x32] so trajectory tooling never compares it against the old
   single-compare series.) *)
let rat_cmp_large_pairs =
  Array.init 32 (fun i ->
      ( Rat.pow (Rat.of_ints (7 + i) 3) 40,
        Rat.pow (Rat.of_ints (15 + (2 * i)) 7) 38 ))

let rat_cmp_large_test =
  Test.make ~name:"rat compare, large operands x32"
    (Staged.stage (fun () ->
         let acc = ref 0 in
         Array.iter
           (fun (x, y) -> acc := !acc + Rat.compare x y)
           rat_cmp_large_pairs;
         ignore (Sys.opaque_identity !acc)))

(* Per-profile cost kernel: social cost of every profile of a 4-agent
   complete-information NCS game (4 paths each: two parallel edges and
   two detours) — the innermost evaluation of the exhaustive solvers. *)
let profile_cost_game =
  let graph =
    Graphs.Graph.make Undirected ~n:4
      [
        (0, 1, Rat.one); (0, 1, Rat.of_ints 3 2); (0, 2, Rat.of_ints 1 2);
        (2, 1, Rat.one); (0, 3, Rat.of_ints 2 3); (3, 1, Rat.of_ints 1 3);
      ]
  in
  Ncs.Complete.make graph [| (0, 1); (0, 1); (0, 1); (0, 1) |]

let profile_cost_test =
  Test.make ~name:"profile cost, 4 agents x 4 paths"
    (Staged.stage (fun () ->
         ignore
           (Seq.fold_left
              (fun acc p -> Rat.add acc (Ncs.Complete.social_cost profile_cost_game p))
              Rat.zero
              (Ncs.Complete.profile_space profile_cost_game))))

(* Simplex pivot kernel: one basis update of the exact-rational revised
   simplex — rescale the pivot row, then eliminate the pivot column from
   the other 23 rows via the fused Rat.sub_mul — on a 24-row basis
   inverse of small rationals, the regime the correlated LPs live in.
   The update mutates in place, so each run works on a fresh copy. *)
let pivot_binv =
  Array.init 24 (fun i ->
      Array.init 24 (fun j -> Rat.of_ints (((i * 5) + (j * 3)) mod 11 - 5) (j + 2)))

let pivot_xb = Array.init 24 (fun i -> Rat.of_ints (i + 1) 3)
let pivot_column = Array.init 24 (fun i -> Rat.of_ints ((2 * i) + 1) 5)

let simplex_pivot_test =
  Test.make ~name:"simplex pivot, 24 rows"
    (Staged.stage (fun () ->
         let binv = Array.map Array.copy pivot_binv in
         let xb = Array.copy pivot_xb in
         Lp.Simplex.pivot ~binv ~xb ~column:pivot_column ~row:11))

(* Cache-service kernels: the canonical fingerprint (serialize + hash a
   game description) and a service hit (mutex + LRU lookup + recency
   touch) — the per-request costs a warm analysis pays instead of the
   exhaustive solve. *)

let fingerprint_game = Constructions.Gworst_game.bliss_game 5

let fingerprint_test =
  Test.make ~name:"canonical fingerprint, G_worst k=5"
    (Staged.stage (fun () ->
         ignore (Cache.Fingerprint.of_game fingerprint_game)))

let cache_hit_test =
  let service = Cache.Service.create ~capacity:64 () in
  let key = Cache.Fingerprint.of_game fingerprint_game in
  Cache.Service.insert service key
    (Cache.Service.Payload (Engine.Sink.Str "warm"));
  Test.make ~name:"cache hit, in-memory LRU"
    (Staged.stage (fun () -> ignore (Cache.Service.find service key)))

(* Digest-rollup kernel: fold 10k resident (key, check) pairs into the
   256-bucket md5 rollup that anti-entropy rounds and online fsck
   exchange — the fixed per-round cost of the repair subsystem. *)
let rollup_service =
  let service = Cache.Service.create ~capacity:10_240 () in
  for i = 0 to 9_999 do
    Cache.Service.insert service
      (Cache.Fingerprint.digest_hex (string_of_int i))
      (Cache.Service.Payload (Engine.Sink.Int i))
  done;
  service

let digest_rollup_test =
  Test.make ~name:"digest rollup, 10k entries"
    (Staged.stage (fun () ->
         ignore (Cache.Service.digest_rollup rollup_service)))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        bigint_test; rat_add_small_test; rat_add_large_test;
        rat_cmp_small_test; rat_cmp_large_test; simplex_pivot_test;
        profile_cost_test; dijkstra_test; steiner_test; equilibria_test;
        fictitious_play_test; frt_test; fingerprint_test; cache_hit_test;
        digest_rollup_test;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 256) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  (Analyze.merge ols instances [ results ], raw_results)

let () =
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

(* Per-kernel estimates in a plain form: (name, ns_per_run, r²). *)
let estimate_rows results =
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> []
  | Some by_name ->
    let rows =
      Hashtbl.fold
        (fun name ols acc ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Some e
            | _ -> None
          in
          (name, ns, Analyze.OLS.r_square ols) :: acc)
        by_name []
    in
    List.sort compare rows

(* Persist the per-kernel OLS estimates as JSON lines so the bench
   trajectory has machine-readable points to compare successive PRs
   against (BENCH_micro.json, sibling of BENCH_results.json). *)
let persist_estimates rows =
  let micro_sink = Engine.Sink.create "BENCH_micro.json" in
  Engine.Sink.emit micro_sink
    [ ("record", Str "run"); ("suite", Str "micro kernels") ];
  List.iter
    (fun (name, ns, r2) ->
      let opt_float = function
        | Some v -> Engine.Sink.Float v
        | None -> Engine.Sink.Null
      in
      Engine.Sink.emit micro_sink
        [
          ("record", Str "micro");
          ("name", Str name);
          ("ns_per_run", opt_float ns);
          ("r_square", opt_float r2);
        ])
    rows;
  Engine.Sink.close micro_sink

(* OLS fits below this are measuring noise, not the kernel; the footer
   names them so a silently broken harness shows up in the transcript. *)
let r2_floor = 0.9

let r2_footer rows =
  let fits = List.filter_map (fun (_, _, r2) -> r2) rows in
  match fits with
  | [] -> print_endline "(r-square sanity: no OLS fits reported)"
  | _ ->
    let low =
      List.filter
        (fun (_, _, r2) -> match r2 with Some r -> r < r2_floor | None -> true)
        rows
    in
    let min_r2 = List.fold_left Stdlib.min 1.0 fits in
    if low = [] then
      Printf.printf "(r-square sanity: all %d kernels >= %.2f, min %.3f)\n"
        (List.length rows) r2_floor min_r2
    else begin
      Printf.printf "(r-square sanity: min %.3f; below %.2f:" min_r2 r2_floor;
      List.iter
        (fun (name, _, r2) ->
          Printf.printf " %s=%s" name
            (match r2 with Some r -> Printf.sprintf "%.3f" r | None -> "n/a"))
        low;
      print_endline ")"
    end

(* --compare: per-kernel speedup against a committed baseline file, with
   a regression gate.  The baseline is read before the sink truncates
   BENCH_micro.json, so comparing a run against its own previous output
   file works.  Kernels present on only one side are reported but not
   gated — renames and new kernels are not regressions. *)

let compare_with : string option ref = ref None
let regression_failed = ref false
let regression_tolerance = 1.25

let load_baseline path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
    Printf.eprintf "--compare: %s\n" e;
    exit 1
  | body ->
    String.split_on_char '\n' body
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else
             match Engine.Sink.of_string line with
             | Error _ -> None
             | Ok j -> (
               match
                 ( Engine.Sink.member "record" j,
                   Engine.Sink.member "name" j,
                   Engine.Sink.member "ns_per_run" j )
               with
               | Some (Str "micro"), Some (Str name), Some (Float ns) ->
                 Some (name, ns)
               | Some (Str "micro"), Some (Str name), Some (Int ns) ->
                 Some (name, float_of_int ns)
               | _ -> None))

let print_comparison baseline rows =
  print_endline "";
  Printf.printf "%-46s %14s %14s %9s\n" "vs baseline" "base ns/run"
    "now ns/run" "speedup";
  let worst = ref None in
  List.iter
    (fun (name, ns, _) ->
      match (ns, List.assoc_opt name baseline) with
      | Some now, Some base ->
        let speedup = base /. now in
        let flag =
          if now > base *. regression_tolerance then begin
            (match !worst with
            | Some (_, w) when w <= speedup -> ()
            | _ -> worst := Some (name, speedup));
            "  REGRESSION"
          end
          else ""
        in
        Printf.printf "%-46s %14.1f %14.1f %8.2fx%s\n" name base now speedup
          flag
      | Some now, None ->
        Printf.printf "%-46s %14s %14.1f %9s\n" name "-" now "new"
      | None, _ -> ())
    rows;
  List.iter
    (fun (name, base) ->
      if not (List.exists (fun (n, _, _) -> n = name) rows) then
        Printf.printf "%-46s %14.1f %14s %9s\n" name base "-" "gone")
    baseline;
  match !worst with
  | Some (name, speedup) ->
    Printf.printf
      "regression gate: %s slowed to %.2fx of baseline (tolerance %.2fx)\n"
      name (1. /. speedup) regression_tolerance;
    regression_failed := true
  | None ->
    Printf.printf "regression gate: no kernel beyond %.0f%% of baseline\n"
      ((regression_tolerance -. 1.) *. 100.)

let run ~pool:_ ~sink:_ ~cache:_ =
  print_endline "=== Micro-benchmarks (bechamel) ===";
  print_endline "";
  let baseline = Option.map load_baseline !compare_with in
  let results, _ = benchmark () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  img (window, results) |> Notty_unix.eol |> Notty_unix.output_image;
  let rows = estimate_rows results in
  persist_estimates rows;
  print_endline "(per-kernel OLS estimates -> BENCH_micro.json)";
  r2_footer rows;
  Option.iter (fun b -> print_comparison b rows) baseline;
  print_endline ""

(* Random Bayesian NCS game corpora used by the universal-bound rows of
   Table 1 and the Observation 2.2 / Lemma 3.1 / Lemma 3.8 checks. *)

open Bayesian_ignorance
module Graph = Graphs.Graph
module Gen = Graphs.Gen
module Dist = Prob.Dist
module Bncs = Ncs.Bayesian_ncs
module Rat = Num.Rat

(* A small random Bayesian NCS game.  All sources coincide so that the
   complete-information optimum can be cross-checked by the Steiner DP;
   destinations and presence vary per type profile.  The description
   (graph + prior) is built separately from the game so the cache-aware
   harness can fingerprint an instance — and skip [Bncs.make] on a warm
   run — without paying for the game build. *)
let random_description ~directed seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 3 in
  let graph =
    if directed then begin
      (* A random DAG-ish directed graph plus a guaranteed out-tree from
         vertex 0 so every destination is reachable. *)
      let base =
        Gen.random_graph rng ~kind:Graph.Directed ~n ~p:0.45 ~max_cost:5
      in
      let tree =
        List.init (n - 1) (fun v ->
            (Random.State.int rng (v + 1), v + 1, Rat.of_int (1 + Random.State.int rng 5)))
      in
      let existing =
        List.map (fun e -> (e.Graph.src, e.Graph.dst, e.Graph.cost)) (Graph.edges base)
      in
      Graph.make Directed ~n (existing @ tree)
    end
    else Gen.random_connected_graph rng ~n ~p:0.4 ~max_cost:5
  in
  let k = 2 in
  let profile () =
    Array.init k (fun _ ->
        let dst = if Random.State.int rng 4 = 0 then 0 else Random.State.int rng n in
        (0, dst))
  in
  let support = List.init (1 + Random.State.int rng 2) (fun _ -> profile ()) in
  let weighted =
    List.map (fun t -> (t, Rat.of_int (1 + Random.State.int rng 3))) support
  in
  (graph, Dist.make weighted)

let descriptions ~directed ~count () =
  let seeds = List.init count (fun i -> (i + 1) * 7919) in
  List.filter_map
    (fun seed ->
      match random_description ~directed seed with
      | d -> Some d
      | exception Invalid_argument _ -> None)
    seeds

let random_game ~directed seed =
  let graph, prior = random_description ~directed seed in
  Bncs.make graph ~prior

let games ?pool ~directed ~count () =
  let seeds = Array.init count (fun i -> (i + 1) * 7919) in
  let build seed =
    match random_game ~directed seed with
    | g -> Some g
    | exception Invalid_argument _ -> None
  in
  let built =
    match pool with
    | Some pool -> Engine.Pool.map_array pool build seeds
    | None -> Array.map build seeds
  in
  List.filter_map Fun.id (Array.to_list built)

(* Section 4: public random bits replace the common prior.

   For several 4-tuples phi we (a) solve the normalized zero-sum game to
   get R~(phi) and the public-randomness mixture q, (b) independently
   bracket R(phi) by binary search, and (c) verify numerically that the
   two agree (Proposition 4.2) and that q's worst-prior guarantee
   matches (Lemma 4.1). *)

open Bayesian_ignorance
open Num
module S4 = Minimax.Section4
module Mg = Minimax.Matrix_game
module Bncs = Ncs.Bayesian_ncs

let fl = Rat.to_float

let row ~name phi =
  let sol = S4.r_tilde ~iterations:3000 phi in
  let q_guarantee = S4.randomized_guarantee phi sol.Mg.row_strategy in
  let lo, hi = S4.r_star_bracket ~iterations:1500 ~steps:12 phi in
  let overlap =
    (* The R(phi) bracket and the R~(phi) bracket must intersect. *)
    Rat.( <= ) lo sol.Mg.upper && Rat.( <= ) sol.Mg.lower hi
  in
  [
    name;
    Printf.sprintf "%dx%d" (S4.n_strategies phi) (S4.n_type_profiles phi);
    Printf.sprintf "[%.4f, %.4f]" (fl sol.Mg.lower) (fl sol.Mg.upper);
    Printf.sprintf "[%.4f, %.4f]" (fl lo) (fl hi);
    Printf.sprintf "%.4f" (fl q_guarantee);
    Report.verdict (overlap && Rat.( <= ) q_guarantee sol.Mg.upper);
  ]

let two_commuters () =
  let graph =
    Graphs.Graph.make Undirected ~n:2 [ (0, 1, Rat.one); (0, 1, Rat.of_ints 3 2) ]
  in
  S4.of_bayesian_ncs
    (Bncs.make graph
       ~prior:(Prob.Dist.uniform [ [| (0, 1); (0, 1) |]; [| (0, 1); (0, 0) |] ]))

let guess_the_type () =
  S4.make [| [| Rat.of_int 1; Rat.of_int 2 |]; [| Rat.of_int 2; Rat.of_int 1 |] |]

let triangle_commuters () =
  (* Three vertices, two agents with uncertain destinations. *)
  let graph =
    Graphs.Graph.make Undirected ~n:3
      [ (0, 1, Rat.of_int 2); (1, 2, Rat.of_int 2); (0, 2, Rat.of_int 3) ]
  in
  S4.of_bayesian_ncs
    (Bncs.make graph
       ~prior:
         (Prob.Dist.uniform
            [ [| (0, 1); (0, 2) |]; [| (0, 2); (0, 2) |]; [| (0, 1); (0, 1) |] ]))

let run ~pool:_ ~sink ~cache:_ =
  print_endline "=== Section 4: public random bits vs the common prior ===";
  print_endline "";
  let rows =
    [
      row ~name:"guess-the-type" (guess_the_type ());
      row ~name:"two commuters" (two_commuters ());
      row ~name:"triangle commuters" (triangle_commuters ());
    ]
  in
  print_endline
    (Report.table
       ~header:
         [ "phi"; "|S|x|T|"; "R~ bracket"; "R* bracket"; "q guarantee"; "verdict" ]
       rows);
  Engine.Sink.table sink ~section:"sec4"
    ~header:[ "phi"; "size"; "r_tilde"; "r_star"; "q guarantee"; "verdict" ]
    rows;
  print_endline "";
  print_endline
    "Proposition 4.2: the R* and R~ brackets intersect on every phi;";
  print_endline
    "Lemma 4.1: the mixture q (public coins only) meets the R~ bound";
  print_endline "against every prior simultaneously.";
  print_endline ""

(* Ablation benches for the design choices DESIGN.md calls out:

   1. visibility interpolation — how much of the ignorance gap each
      globally-informed agent closes (the local-vs-global dial);
   2. branch-and-bound vs exhaustive optP — the solver trade-off that
      lets exact optima reach larger games;
   3. weighted vs fair cost sharing — footnote 5's variant;
   4. fictitious-play iterations vs certified bracket width — the
      Section 4 solver's accuracy dial. *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Visibility = Bayes.Visibility
module Weighted = Ncs.Weighted
module Graph = Graphs.Graph

let visibility () =
  print_endline "--- Ablation: partial global views (benevolent agents) ---";
  print_endline "";
  let rows =
    List.concat_map
      (fun (name, game) ->
        let bayes = Bncs.game game in
        List.map
          (fun (m, v) ->
            [ name; string_of_int m; Report.ext_cell v ])
          (Visibility.gap_closure bayes))
      [
        ("gworst-bliss k=3", Constructions.Gworst_game.bliss_game 3);
        ("anshelevich k=4", Constructions.Anshelevich_game.game 4);
        ("diamond level 1", snd (Constructions.Diamond_game.game 1));
      ]
  in
  print_endline
    (Report.table ~header:[ "game"; "#informed agents"; "optimum" ] rows);
  print_endline "";
  print_endline
    "Endpoints are optP (0 informed) and optC (all informed); the dial";
  print_endline "shows which agent's view actually carries the gap.";
  print_endline ""

let branch_and_bound ~pool ~sink =
  print_endline "--- Ablation: exhaustive vs branch-and-bound optP ---";
  print_endline "";
  let time f =
    let t0 = Sys.time () in
    let v = f () in
    (v, Sys.time () -. t0)
  in
  let rows =
    List.map
      (fun (name, game) ->
        let (ex, _), t_ex = time (fun () -> Bncs.opt_p_exhaustive ~pool game) in
        let (bb, _, certified), t_bb =
          time (fun () -> Bncs.opt_p_branch_and_bound game)
        in
        [
          name;
          Report.ext_cell ex;
          Printf.sprintf "%.3fs" t_ex;
          Report.ext_cell bb;
          Printf.sprintf "%.3fs" t_bb;
          Report.verdict (certified && Extended.equal ex bb);
        ])
      [
        ("anshelevich k=7", Constructions.Anshelevich_game.game 7);
        ("gworst-curse k=6", Constructions.Gworst_game.curse_game 6);
        ("affine m=2", Constructions.Affine_game.game 2);
        ("diamond level 1", snd (Constructions.Diamond_game.game 1));
      ]
  in
  print_endline
    (Report.table
       ~header:[ "game"; "exhaustive"; "time"; "B&B"; "time"; "agree" ]
       rows);
  Engine.Sink.table sink ~section:"ablations"
    ~header:[ "game"; "exhaustive"; "exhaustive time"; "bb"; "bb time"; "agree" ]
    rows;
  print_endline ""

let weighted ~sink =
  print_endline "--- Ablation: fair vs proportional (weighted) sharing ---";
  print_endline "";
  let graph = Graph.make Undirected ~n:2 [ (0, 1, Rat.one); (0, 1, Rat.of_int 2) ] in
  let pairs = [| (0, 1); (0, 1) |] in
  let rows =
    List.map
      (fun (label, weights) ->
        let g = Weighted.make graph ~pairs ~weights in
        let cell = function Some r -> Report.rat_cell r | None -> "n/a" in
        [
          label;
          cell (Weighted.price_of_stability g);
          cell (Weighted.price_of_anarchy g);
        ])
      [
        ("weights 1:1 (fair)", [| Rat.one; Rat.one |]);
        ("weights 2:1", [| Rat.of_int 2; Rat.one |]);
        ("weights 5:1", [| Rat.of_int 5; Rat.one |]);
        ("weights 10:1", [| Rat.of_int 10; Rat.one |]);
      ]
  in
  print_endline (Report.table ~header:[ "instance"; "PoS"; "PoA" ] rows);
  Engine.Sink.table sink ~section:"ablations" ~kind:"weighted"
    ~header:[ "instance"; "PoS"; "PoA" ] rows;
  print_endline "";
  print_endline
    "Heavier asymmetry shrinks the heavy agent's incentive to share:";
  print_endline "the weighted variant (footnote 5) changes the equilibrium set.";
  print_endline ""

let fictitious_play () =
  print_endline "--- Ablation: fictitious-play iterations vs bracket width ---";
  print_endline "";
  let phi =
    Minimax.Section4.make
      (Array.init 5 (fun i ->
           Array.init 5 (fun j -> Rat.of_int (1 + (((i * 5) + (j * 2)) mod 7)))))
  in
  let rows =
    List.map
      (fun iterations ->
        let sol = Minimax.Section4.r_tilde ~iterations phi in
        let width =
          Rat.to_float (Rat.sub sol.Minimax.Matrix_game.upper sol.Minimax.Matrix_game.lower)
        in
        [
          string_of_int iterations;
          Printf.sprintf "%.5f" (Rat.to_float sol.Minimax.Matrix_game.lower);
          Printf.sprintf "%.5f" (Rat.to_float sol.Minimax.Matrix_game.upper);
          Printf.sprintf "%.5f" width;
        ])
      [ 100; 400; 1600; 6400 ]
  in
  print_endline
    (Report.table ~header:[ "iterations"; "lower"; "upper"; "width" ] rows);
  print_endline "";
  print_endline "The certified bracket narrows roughly like O(1/sqrt(T)).";
  print_endline ""

let run ~pool ~sink ~cache:_ =
  print_endline "=== Ablations ===";
  print_endline "";
  visibility ();
  branch_and_bound ~pool ~sink;
  weighted ~sink;
  fictitious_play ()

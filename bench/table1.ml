(* Reproduction of Table 1: the twelve asymptotic bounds on Bayesian
   ignorance in NCS games.  Universal rows are validated over random
   corpora; existential rows over the paper's constructions, exact where
   exhaustion is feasible and closed-form beyond.

   Every exact result is content-addressed: with a cache service
   attached, analyses are keyed by the canonical game fingerprint (and
   auxiliary payloads by fingerprint + solver parameters), so a warm
   rerun replays the stored values — byte-identical output — instead of
   re-running the exhaustive solvers or even rebuilding the games. *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures
module Ag = Constructions.Affine_game
module An = Constructions.Anshelevich_game
module Gw = Constructions.Gworst_game
module Diamond = Steiner.Diamond
module Online = Steiner.Online
module Service = Cache.Service
module Sink = Engine.Sink

let header = [ "cell"; "paper bound"; "measured"; "verdict" ]

let ratio_opt num den =
  match num, den with
  | Some n, Some d -> Measures.ratio n d
  | _ -> None

let fl r = Rat.to_float r

(* --- cached exact analyses --- *)

let analysis ~pool ~cache game =
  match cache with
  | None -> Bncs.analyze ~pool game
  | Some c ->
    fst
      (Service.analysis c (Cache.Fingerprint.of_game game) (fun () ->
           Bncs.analyze ~pool game))

let report ~pool ~cache game = (analysis ~pool ~cache game).Bncs.report

(* From a description (graph + prior): the fingerprint needs only the
   description, so a warm run skips [Bncs.make] entirely — for the big
   instances the game build costs as much as the solve. *)
let report_of_description ~pool ~cache (graph, prior) =
  match cache with
  | None -> (Bncs.analyze ~pool (Bncs.make graph ~prior)).Bncs.report
  | Some c ->
    (fst
       (Service.analysis c
          (Cache.Fingerprint.game graph ~prior)
          (fun () -> Bncs.analyze ~pool (Bncs.make graph ~prior))))
      .Bncs.report

(* An auxiliary solver result cached as an opaque JSON payload under
   fingerprint/query.  [decode] failure (impossible for entries we wrote
   ourselves, since the store verifies checksums) falls back to
   recomputing. *)
let cached_payload ~cache ~key ~encode ~decode compute =
  match cache with
  | None -> compute ()
  | Some c -> (
    let payload, _hit = Service.payload c key (fun () -> encode (compute ())) in
    match decode payload with Some v -> v | None -> compute ())

(* --- Universal rows over a corpus --- *)

type corpus_stats = {
  games : int;
  max_opt_ratio : float;
  max_best_ratio : float;
  max_worst_ratio : float;
  min_best_ratio : float;
  min_worst_ratio : float;
  max_k : int;
  all_within_k : bool; (* worst-eqP <= k optC everywhere (Lemma 3.1) *)
}

let corpus_stats ~pool ~cache descriptions =
  let stats =
    List.filter_map
      (fun (graph, prior) ->
        match report_of_description ~pool ~cache (graph, prior) with
        | exception Invalid_argument _ -> None
        | m ->
          let k =
            match Prob.Dist.support prior with
            | t :: _ -> Array.length t
            | [] -> 0
          in
          let r = Measures.ratios_of_report m in
          let within =
            match m.Measures.worst_eq_p with
            | None -> true
            | Some w ->
              Extended.( <= ) w (Extended.mul (Extended.of_int k) m.Measures.opt_c)
          in
          Some (k, r, within))
      descriptions
  in
  let fold get init better =
    List.fold_left
      (fun acc (_, r, _) -> match get r with Some v -> better acc (fl v) | None -> acc)
      init stats
  in
  {
    games = List.length stats;
    max_opt_ratio = fold (fun r -> r.Measures.r_opt) 1.0 Float.max;
    max_best_ratio = fold (fun r -> r.Measures.r_best_eq) 1.0 Float.max;
    max_worst_ratio = fold (fun r -> r.Measures.r_worst_eq) 1.0 Float.max;
    min_best_ratio = fold (fun r -> r.Measures.r_best_eq) Float.infinity Float.min;
    min_worst_ratio = fold (fun r -> r.Measures.r_worst_eq) Float.infinity Float.min;
    max_k = List.fold_left (fun acc (k, _, _) -> Stdlib.max acc k) 0 stats;
    all_within_k = List.for_all (fun (_, _, w) -> w) stats;
  }

let universal_rows ~label stats =
  let k = float_of_int stats.max_k in
  [
    [
      Printf.sprintf "%s optP/optC universal" label;
      "1 <= ratio <= O(k)";
      Printf.sprintf "max %.3f over %d games (k <= %d)" stats.max_opt_ratio
        stats.games stats.max_k;
      Report.verdict (stats.max_opt_ratio >= 1.0 && stats.max_opt_ratio <= k);
    ];
    [
      Printf.sprintf "%s best-eq universal" label;
      "Omega(1/log k) <= ratio <= O(k)";
      Printf.sprintf "range [%.3f, %.3f]" stats.min_best_ratio stats.max_best_ratio;
      Report.verdict
        (stats.max_best_ratio <= k
         && stats.min_best_ratio >= 1.0 /. (1.0 +. (2.0 *. log k)));
    ];
    [
      Printf.sprintf "%s worst-eq universal" label;
      "Omega(1/k) <= ratio <= O(k), worst-eqP <= k optC";
      Printf.sprintf "range [%.3f, %.3f], Lemma 3.1 %s" stats.min_worst_ratio
        stats.max_worst_ratio
        (if stats.all_within_k then "holds" else "VIOLATED");
      Report.verdict
        (stats.all_within_k
         && stats.max_worst_ratio <= k
         && stats.min_worst_ratio >= 1.0 /. k);
    ];
  ]

(* --- Existential rows --- *)

(* Directed optP/optC = Omega(k): the affine-plane game (Lemma 3.2). *)
let affine_row ~pool ~cache () =
  let exact =
    let m = report ~pool ~cache (Ag.game 2) in
    (m.Measures.opt_p, m.Measures.worst_eq_c)
  in
  let measured_ratio =
    match exact with
    | Extended.Fin p, Some (Extended.Fin c) -> Rat.to_float (Rat.div p c)
    | _ -> nan
  in
  let predicted_2 = fl (Ag.predicted_ratio 2) in
  let series =
    String.concat ", "
      (List.map
         (fun m -> Printf.sprintf "m=%d: %.3f" m (fl (Ag.predicted_ratio m)))
         [ 2; 3; 5; 7; 11 ])
  in
  [
    "directed optP/optC existential (L3.2)";
    "Omega(k) at n = Theta(k^2)";
    Printf.sprintf "m=2 exhaustive: %.3f (closed form %.3f); growth: %s"
      measured_ratio predicted_2 series;
    Report.verdict (Float.abs (measured_ratio -. predicted_2) < 1e-9);
  ]

(* Directed best-eq existential O(1/log k): Anshelevich game (Lemma 3.3). *)
let anshelevich_row ~pool ~cache () =
  let exact k =
    let m = report ~pool ~cache (An.game k) in
    match ratio_opt m.Measures.worst_eq_p m.Measures.best_eq_c with
    | Some r -> fl r
    | None -> nan
  in
  let e5 = exact 5 and e7 = exact 7 in
  let p5 = fl (An.predicted_ratio 5) and p7 = fl (An.predicted_ratio 7) in
  let closed =
    String.concat ", "
      (List.map
         (fun k -> Printf.sprintf "k=%d: %.3f" k (An.predicted_ratio_float k))
         [ 16; 64; 256; 1024 ])
  in
  [
    "directed best-eq existential (L3.3)";
    "worst-eqP/best-eqC = O(1/log k), n = Theta(k)";
    Printf.sprintf "exhaustive k=5: %.3f, k=7: %.3f; decay: %s" e5 e7 closed;
    Report.verdict
      (Float.abs (e5 -. p5) < 1e-9 && Float.abs (e7 -. p7) < 1e-9 && e7 < e5);
  ]

(* Worst-eq existential rows, on G_worst (Lemmas 3.6/3.7). *)
let gworst_rows ~pool ~cache ~directed label =
  let measure game =
    let m = report ~pool ~cache game in
    match ratio_opt m.Measures.worst_eq_p m.Measures.worst_eq_c with
    | Some r -> fl r
    | None -> nan
  in
  let curse k = measure (Gw.curse_game ?directed:(Some directed) k) in
  let bliss k = measure (Gw.bliss_game ?directed:(Some directed) k) in
  let c3 = curse 3 and c5 = curse 5 and c7 = curse 7 in
  let b3 = bliss 3 and b5 = bliss 5 and b7 = bliss 7 in
  [
    [
      Printf.sprintf "%s worst-eq existential Omega(k)" label;
      "ratio = Omega(k) at n = O(1)";
      Printf.sprintf "k=3: %.3f, k=5: %.3f, k=7: %.3f" c3 c5 c7;
      Report.verdict (c3 < c5 && c5 < c7 && c7 > 3.0);
    ];
    [
      Printf.sprintf "%s worst-eq existential O(1/k)" label;
      "ratio = O(1/k) at n = O(1)";
      Printf.sprintf "k=3: %.3f, k=5: %.3f, k=7: %.3f" b3 b5 b7;
      Report.verdict (b3 > b5 && b5 > b7 && b7 < 0.5);
    ];
  ]

(* Undirected optP/optC <= O(log n): Lemma 3.4 via FRT trees.

   The whole row is one cached payload keyed by the digest of all trial
   fingerprints plus the sampling parameters: the trials share one
   outer RNG stream, so caching them individually could desynchronize
   it on a partial hit.  Ratios are Monte-Carlo floats; they are stored
   as IEEE-754 bit patterns so the warm rerun is bit-identical. *)
let frt_row ~pool ~cache () =
  let trials = [ (6, 1); (6, 2); (8, 3); (8, 4); (10, 5); (10, 6); (12, 7); (12, 8) ] in
  let trees = 8 in
  let outer_seed = 424242 in
  (* Instance descriptions depend only on the per-trial seed and are
     cheap to build; games are built lazily, only on a cache miss. *)
  let describe (n, seed) =
    let rng' = Random.State.make [| seed |] in
    let g = Graphs.Gen.random_connected_graph rng' ~n ~p:0.35 ~max_cost:7 in
    (* Agents: shared source 0, random destinations; a uniform prior
       over a few such type profiles. *)
    let k = 3 in
    let profile () = Array.init k (fun _ -> (0, Random.State.int rng' n)) in
    let support = List.init 3 (fun _ -> profile ()) in
    (n, g, support)
  in
  let described = List.map describe trials in
  let compute () =
    let rng = Random.State.make [| outer_seed |] in
    List.filter_map
      (fun (n, g, support) ->
        let game = Bncs.make g ~prior:(Prob.Dist.uniform support) in
        match Bncs.opt_c ~pool game with
        | Extended.Fin opt_c when not (Rat.is_zero opt_c) ->
          (* The Lemma 3.4 strategy: expected cost over sampled trees. *)
          let total = ref 0.0 in
          for _ = 1 to trees do
            let tree = Embed.Frt.sample rng g in
            let cost =
              Prob.Dist.expectation
                (fun tp ->
                  let edges =
                    List.concat_map
                      (fun (x, y) -> Embed.Frt.expand_pair tree g x y)
                      (Array.to_list tp)
                  in
                  Graphs.Graph.total_cost g edges)
                (Prob.Dist.uniform support)
            in
            total := !total +. Rat.to_float cost
          done;
          let tree_strategy_cost = !total /. float_of_int trees in
          Some (tree_strategy_cost /. Rat.to_float opt_c, n)
        | _ -> None)
      described
  in
  let key =
    lazy
      (let fps =
         List.map
           (fun (_, g, support) ->
             Cache.Fingerprint.game g ~prior:(Prob.Dist.uniform support))
           described
       in
       Service.key
         ~fingerprint:(Cache.Fingerprint.digest_hex (String.concat "," fps))
         ~query:(Printf.sprintf "frt:trees=%d;rng=%d" trees outer_seed))
  in
  let encode results =
    Sink.List
      (List.map
         (fun (r, n) ->
           Sink.List [ Sink.Str (Int64.to_string (Int64.bits_of_float r)); Sink.Int n ])
         results)
  in
  let decode = function
    | Sink.List items ->
      let item = function
        | Sink.List [ Sink.Str bits; Sink.Int n ] ->
          Option.map (fun b -> (Int64.float_of_bits b, n)) (Int64.of_string_opt bits)
        | _ -> None
      in
      let decoded = List.filter_map item items in
      if List.length decoded = List.length items then Some decoded else None
    | _ -> None
  in
  let results =
    match cache with
    | None -> compute ()
    | Some _ ->
      cached_payload ~cache ~key:(Lazy.force key) ~encode ~decode compute
  in
  let worst =
    List.fold_left (fun acc (r, _) -> Float.max acc r) 1.0 results
  in
  let bound =
    List.fold_left
      (fun acc (r, n) ->
        acc && r <= 4.0 *. (log (float_of_int n) /. log 2.0) +. 4.0)
      true results
  in
  [
    "undirected optP/optC universal (L3.4)";
    "optP <= O(log n) optC via random tree strategies";
    Printf.sprintf "max E_tree[K]/optC = %.3f over %d instances (n <= 12)" worst
      (List.length results);
    Report.verdict (bound && results <> []);
  ]

(* Undirected optP/optC = Omega(log n): the diamond game (Lemma 3.5). *)
let diamond_row ~pool ~cache () =
  let exact1 =
    let _, game = Constructions.Diamond_game.game 1 in
    let m = report ~pool ~cache game in
    match m.Measures.opt_p with Extended.Fin r -> fl r | Extended.Inf -> nan
  in
  (* Level 2 is beyond exhaustion but within branch-and-bound reach; the
     bounded search result is cached under fingerprint/bnb:budget. *)
  let exact2, certified2 =
    let _, game = Constructions.Diamond_game.game 2 in
    let budget = 3_000_000 in
    let compute () =
      let v, _, certified = Bncs.opt_p_branch_and_bound ~node_budget:budget game in
      (v, certified)
    in
    let encode (v, certified) =
      Sink.Obj [ ("value", Cache.Codec.ext_to_json v); ("certified", Bool certified) ]
    in
    let decode j =
      match (Sink.member "value" j, Sink.member "certified" j) with
      | Some vj, Some (Sink.Bool c) -> (
        match Cache.Codec.ext_of_json vj with
        | Ok v -> Some (v, c)
        | Error _ -> None)
      | _ -> None
    in
    let key =
      match cache with
      | None -> ""
      | Some _ ->
        Service.key
          ~fingerprint:(Cache.Fingerprint.of_game game)
          ~query:(Printf.sprintf "bnb:%d" budget)
    in
    let v, certified = cached_payload ~cache ~key ~encode ~decode compute in
    ((match v with Extended.Fin r -> fl r | Extended.Inf -> nan), certified)
  in
  let oblivious j =
    fl (Constructions.Diamond_game.oblivious_profile_cost (Diamond.build j))
  in
  let o0 = oblivious 0 and o1 = oblivious 1 and o2 = oblivious 2 and o3 = oblivious 3 in
  [
    "undirected optP/optC existential (L3.5)";
    "Omega(log n) at k = Theta(n), via online Steiner adversary";
    Printf.sprintf
      "exact optP/optC: level 1 = %.3f, level 2 = %.4f (B&B%s); profile cost by level: %.2f %.2f %.2f %.2f (optC = 1)"
      exact1 exact2
      (if certified2 then ", certified" else ", budget hit")
      o0 o1 o2 o3;
    Report.verdict
      (Float.abs (exact1 -. 1.25) < 1e-9
       && exact2 > exact1 +. 0.2
       && o1 > o0 +. 0.2 && o2 > o1 +. 0.2 && o3 > o2 +. 0.2);
  ]

(* Undirected best-eq existential: Omega(log n) via the diamond (its
   optimal profiles are equilibria), and < 1 via the Anshelevich
   phenomenon surviving on a small graph.  Both games already have
   cached analyses by this point in the run. *)
let undirected_best_eq_row ~pool ~cache () =
  let bliss =
    (* worst-eqP < best-eqC already exhibits best-eqP/best-eqC < 1. *)
    let m = report ~pool ~cache (An.game 5) in
    match ratio_opt m.Measures.best_eq_p m.Measures.best_eq_c with
    | Some r -> fl r
    | None -> nan
  in
  let diamond =
    let _, game = Constructions.Diamond_game.game 1 in
    let m = report ~pool ~cache game in
    match ratio_opt m.Measures.best_eq_p m.Measures.best_eq_c with
    | Some r -> fl r
    | None -> nan
  in
  [
    "undirected best-eq existential";
    "Omega(log n) and, separately, < 1 at n = O(1)";
    Printf.sprintf "diamond level 1: %.3f; bliss game k=5: %.3f" diamond bliss;
    Report.verdict (diamond > 1.0 && bliss < 1.0);
  ]

let run ~pool ~sink ~cache =
  print_endline "=== Table 1: Bayesian ignorance bounds in NCS games ===";
  print_endline "";
  let directed_stats =
    corpus_stats ~pool ~cache (Corpus.descriptions ~directed:true ~count:30 ())
  in
  let undirected_stats =
    corpus_stats ~pool ~cache (Corpus.descriptions ~directed:false ~count:30 ())
  in
  let rows =
    universal_rows ~label:"directed" directed_stats
    @ [ affine_row ~pool ~cache (); anshelevich_row ~pool ~cache () ]
    @ gworst_rows ~pool ~cache ~directed:true "directed"
    @ universal_rows ~label:"undirected" undirected_stats
    @ [
        frt_row ~pool ~cache (); diamond_row ~pool ~cache ();
        undirected_best_eq_row ~pool ~cache ();
      ]
    @ gworst_rows ~pool ~cache ~directed:false "undirected"
  in
  print_endline (Report.table ~header rows);
  Engine.Sink.table sink ~section:"table1" ~header rows;
  print_endline ""

(* Series reproducing the two figures' constructions.

   Fig. 1 (the graph G_k): the unique Bayesian equilibrium cost stays at
   1 + eps while the expected best complete-information equilibrium
   grows like H(k-1)/2 — plotted as a k-series.

   Fig. 2 (the graph G_worst): the worst-equilibrium ratio under the two
   parameter windows, one growing linearly, one decaying like 1/k. *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures
module An = Constructions.Anshelevich_game
module Gw = Constructions.Gworst_game

let fl = Rat.to_float

let fig1 ~pool ~sink =
  print_endline "=== Fig. 1 series: the G_k game (Lemma 3.3) ===";
  print_endline "";
  let exact_rows =
    List.map
      (fun k ->
        let m = Bncs.measures_exhaustive ~pool (An.game k) in
        let cell = Report.ext_opt_cell in
        [
          string_of_int k;
          cell m.Measures.worst_eq_p;
          cell m.Measures.best_eq_c;
          (match m.Measures.worst_eq_p, m.Measures.best_eq_c with
           | Some (Extended.Fin p), Some (Extended.Fin c) ->
             Printf.sprintf "%.4f" (fl (Rat.div p c))
           | _ -> "n/a");
          "exhaustive";
        ])
      [ 3; 4; 5; 6; 7 ]
  in
  let closed_rows =
    List.map
      (fun k ->
        [
          string_of_int k;
          Report.float_cell (An.predicted_worst_eq_p_float k);
          Report.float_cell (An.predicted_best_eq_c_float k);
          Printf.sprintf "%.4f" (An.predicted_ratio_float k);
          "closed form";
        ])
      [ 16; 32; 128; 512; 2048 ]
  in
  print_endline
    (Report.table
       ~header:[ "k"; "worst-eqP"; "best-eqC"; "ratio"; "mode" ]
       (exact_rows @ closed_rows));
  Engine.Sink.table sink ~section:"fig1"
    ~header:[ "k"; "worst-eqP"; "best-eqC"; "ratio"; "mode" ]
    (exact_rows @ closed_rows);
  print_endline "";
  print_endline
    "Shape check: worst-eqP flat at 1+eps; best-eqC grows like H(k-1)/2;";
  print_endline "the ratio decays like O(1/log k) (ignorance is bliss).";
  print_endline ""

let fig2 ~pool ~sink =
  print_endline "=== Fig. 2 series: the G_worst game (Lemmas 3.6/3.7) ===";
  print_endline "";
  let row maker k mode =
    let m = Bncs.measures_exhaustive ~pool (maker k) in
    let cell = Report.ext_opt_cell in
    [
      string_of_int k;
      mode;
      cell m.Measures.worst_eq_p;
      cell m.Measures.worst_eq_c;
      (match m.Measures.worst_eq_p, m.Measures.worst_eq_c with
       | Some (Extended.Fin p), Some (Extended.Fin c) ->
         Printf.sprintf "%.4f" (fl (Rat.div p c))
       | _ -> "n/a");
    ]
  in
  let ks = [ 3; 4; 5; 6; 7; 8 ] in
  let rows =
    List.map (fun k -> row Gw.curse_game k "curse") ks
    @ List.map (fun k -> row Gw.bliss_game k "bliss") ks
  in
  print_endline
    (Report.table
       ~header:[ "k"; "window"; "worst-eqP"; "worst-eqC"; "ratio" ]
       rows);
  Engine.Sink.table sink ~section:"fig2"
    ~header:[ "k"; "window"; "worst-eqP"; "worst-eqC"; "ratio" ]
    rows;
  print_endline "";
  print_endline
    "Shape check: the curse window gives ratio = Omega(k) (ignorance";
  print_endline
    "hurts by a k factor on 3 vertices); the bliss window gives O(1/k).";
  print_endline ""

let run ~pool ~sink ~cache:_ =
  fig1 ~pool ~sink;
  fig2 ~pool ~sink

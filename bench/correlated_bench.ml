(* Correlated-play benchmark: the six correlated quantities (best/worst
   over the CCE and Comm polytopes, plus the deviation-free
   public-randomness pair) by exact-rational LP, cross-checked against
   the exhaustive solver on the overlap window (k <= 7): every pure
   Bayesian equilibrium must be a feasible point of both polytopes and
   the values must interleave exactly as the polytope inclusions
   dictate — pub-best <= best-cce <= best-comm <= best-eqP <= worst-eqP
   <= worst-comm <= worst-cce <= pub-worst — with pub-best = optC
   (Lemma 4.1).  Every LP answer carries dual certificates that are
   machine-checked before a row is printed.

   Beyond the window, a k-series quantifies how much shared randomness
   buys: the CCE values keep growing with k while the public-randomness
   optimum stays pinned at optC, and the certified tier supplies
   worst-eqP brackets to measure the gap against.

   Structured rows go to their own sink, BENCH_correlated.json.  A
   violated inclusion, a failed Lemma-4.1 identity or a rejected
   certificate exits nonzero — CI runs this section as a gate. *)

open Bayesian_ignorance
open Num
module Bncs = Ncs.Bayesian_ncs
module Measures = Bayes.Measures
module Solve = Certify.Solve
module Concept = Correlated.Concept
module Corr = Correlated.Correlated
module Sink = Engine.Sink

let out_file = "BENCH_correlated.json"

let build name k =
  match Constructions.Registry.build name k with
  | Ok g -> g
  | Error e -> failwith ("correlated bench: " ^ e)

let analyze_checked name k concept game =
  let report = Corr.analyze ~concept game in
  (match Corr.check game report with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf
      "correlated bench: %s k=%d %s: certificate rejected: %s\n" name k
      (Concept.to_string concept) e;
    exit 1);
  report

(* The same overlap window as the certified crosscheck: every
   (family, k) point the exhaustive equilibrium enumeration finishes in
   seconds. *)
let crosscheck_points =
  List.map (fun k -> ("anshelevich", k)) [ 2; 3; 4; 5; 6; 7 ]
  @ List.concat_map
      (fun k -> [ ("gworst-curse", k); ("gworst-bliss", k) ])
      [ 2; 3; 4; 5 ]

let rat_str = Rat.to_string

let crosscheck ~pool ~sink =
  print_endline
    "=== Correlated vs exhaustive: the overlap window (k <= 7) ===";
  print_endline "";
  let all_ok = ref true in
  let fail name k msg =
    all_ok := false;
    Printf.eprintf "correlated bench: %s k=%d: %s\n" name k msg
  in
  let rows =
    List.map
      (fun (name, k) ->
        let game = build name k in
        let exact = (Bncs.analyze ~pool game).Bncs.report in
        let cce = analyze_checked name k Concept.Cce game in
        let comm = analyze_checked name k Concept.Comm game in
        let best_eq, worst_eq =
          match (exact.Measures.best_eq_p, exact.Measures.worst_eq_p) with
          | Some b, Some w -> (Extended.to_rat_exn b, Extended.to_rat_exn w)
          | _ -> failwith "correlated bench: NCS game without a pure BNE"
        in
        let opt_c = Extended.to_rat_exn exact.Measures.opt_c in
        (* Every enumerated pure Bayesian equilibrium must be feasible
           in both polytopes. *)
        let t = Corr.make game in
        let members_ok =
          Seq.for_all
            (fun s ->
              List.for_all
                (fun concept -> Corr.equilibrium_member t ~concept s = Ok ())
                [ Concept.Cce; Concept.Comm ])
            (Bncs.bayesian_equilibria game)
        in
        if not members_ok then
          fail name k "a pure Bayesian equilibrium is outside a polytope";
        (* The full inclusion chain, exactly. *)
        let chain =
          [
            ("pub-best <= best-cce", cce.Corr.pub_best.Corr.value,
             cce.Corr.best.Corr.value);
            ("best-cce <= best-comm", cce.Corr.best.Corr.value,
             comm.Corr.best.Corr.value);
            ("best-comm <= best-eqP", comm.Corr.best.Corr.value, best_eq);
            ("best-eqP <= worst-eqP", best_eq, worst_eq);
            ("worst-eqP <= worst-comm", worst_eq, comm.Corr.worst.Corr.value);
            ("worst-comm <= worst-cce", comm.Corr.worst.Corr.value,
             cce.Corr.worst.Corr.value);
            ("worst-cce <= pub-worst", cce.Corr.worst.Corr.value,
             cce.Corr.pub_worst.Corr.value);
          ]
        in
        let chain_ok =
          List.for_all
            (fun (label, lo, hi) ->
              let ok = Rat.( <= ) lo hi in
              if not ok then
                fail name k
                  (Printf.sprintf "%s violated (%s > %s)" label (rat_str lo)
                     (rat_str hi));
              ok)
            chain
        in
        (* Lemma 4.1: the deviation-free optimum is optC. *)
        let lemma_ok = Rat.equal cce.Corr.pub_best.Corr.value opt_c in
        if not lemma_ok then
          fail name k
            (Printf.sprintf "pub-best %s differs from optC %s"
               (rat_str cce.Corr.pub_best.Corr.value) (rat_str opt_c));
        [
          name;
          string_of_int k;
          rat_str cce.Corr.best.Corr.value;
          rat_str comm.Corr.best.Corr.value;
          rat_str best_eq;
          rat_str worst_eq;
          rat_str comm.Corr.worst.Corr.value;
          rat_str cce.Corr.worst.Corr.value;
          rat_str cce.Corr.pub_best.Corr.value;
          rat_str cce.Corr.pub_worst.Corr.value;
          Report.verdict (members_ok && chain_ok && lemma_ok);
        ])
      crosscheck_points
  in
  let header =
    [
      "family"; "k"; "best-cce"; "best-comm"; "best-eqP"; "worst-eqP";
      "worst-comm"; "worst-cce"; "pub-best"; "pub-worst"; "holds";
    ]
  in
  print_endline (Report.table ~header rows);
  Sink.table sink ~section:"correlated-crosscheck" ~header rows;
  print_endline "";
  !all_ok

(* The LP column count grows with the valid-profile space, so the
   series stops well short of the certified tier's k = 50: anshelevich
   k = 10 solves four LPs over ~1.5k columns in under a minute, and the
   G_worst windows multiply columns by ~4 per k. *)
let beyond_points =
  List.map (fun k -> ("anshelevich", k)) [ 8; 9; 10 ]
  @ List.concat_map
      (fun k -> [ ("gworst-curse", k); ("gworst-bliss", k) ])
      [ 6; 7 ]

let ext_str v =
  match Extended.to_rat_opt v with
  | Some r -> Rat.to_string r
  | None -> "inf"

let bracket_cell (b : Solve.bracket) =
  if Extended.equal b.Solve.lo b.Solve.hi then ext_str b.Solve.lo
  else Printf.sprintf "[%s, %s]" (ext_str b.Solve.lo) (ext_str b.Solve.hi)

(* worst-eqP / pub-best: the factor shared randomness buys over the
   worst equilibrium.  The numerator arrives as a certified bracket, so
   the ratio is one too; it collapses to a point when the bracket does. *)
let gain_cell (b : Solve.bracket) pub_best =
  let ratio v =
    match Extended.to_rat_opt v with
    | Some r -> Rat.to_string (Rat.div r pub_best)
    | None -> "inf"
  in
  if Extended.equal b.Solve.lo b.Solve.hi then ratio b.Solve.lo
  else Printf.sprintf "[%s, %s]" (ratio b.Solve.lo) (ratio b.Solve.hi)

let beyond ~pool ~sink =
  print_endline
    "=== Beyond enumeration: what shared randomness buys (k-series) ===";
  print_endline "";
  let rows =
    List.map
      (fun (name, k) ->
        let game = build name k in
        let (cce, cert), span =
          Engine.Timer.timed (fun () ->
              let cce = analyze_checked name k Concept.Cce game in
              let cert = Solve.certify ~pool game in
              (match Solve.check game cert with
              | Ok () -> ()
              | Error e ->
                Printf.eprintf
                  "correlated bench: %s k=%d: certified bracket rejected: %s\n"
                  name k e;
                exit 1);
              (cce, cert))
        in
        [
          name;
          string_of_int k;
          rat_str cce.Corr.best.Corr.value;
          rat_str cce.Corr.worst.Corr.value;
          rat_str cce.Corr.pub_best.Corr.value;
          rat_str cce.Corr.pub_worst.Corr.value;
          bracket_cell cert.Solve.worst_eq_p;
          gain_cell cert.Solve.worst_eq_p cce.Corr.pub_best.Corr.value;
          Format.asprintf "%a" Engine.Timer.pp_seconds
            span.Engine.Timer.seconds;
        ])
      beyond_points
  in
  let header =
    [
      "family"; "k"; "best-cce"; "worst-cce"; "pub-best"; "pub-worst";
      "worst-eqP"; "worst-eqP/pub-best"; "time";
    ]
  in
  print_endline (Report.table ~header rows);
  Sink.table sink ~section:"correlated-series" ~header rows;
  print_endline "";
  print_endline
    "pub-best stays pinned at optC for every k (Lemma 4.1): with shared";
  print_endline
    "random bits the players coordinate on the optimum, while the worst";
  print_endline
    "equilibrium drifts away by the factor in the last ratio column."

let run ~pool ~sink:_ ~cache:_ =
  let sink = Sink.create out_file in
  let ok =
    Fun.protect
      ~finally:(fun () -> Sink.close sink)
      (fun () ->
        let ok = crosscheck ~pool ~sink in
        beyond ~pool ~sink;
        ok)
  in
  Printf.printf "\n(structured correlated rows -> %s)\n" out_file;
  if not ok then begin
    Printf.eprintf
      "correlated bench: crosscheck failed — inclusion, interleaving and \
       Lemma 4.1 must hold exactly on the overlap window\n";
    exit 1
  end

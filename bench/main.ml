(* Full reproduction harness for "Bayesian ignorance" (Alon, Emek,
   Feldman, Tennenholtz; PODC 2010 / TCS 2012).

   Regenerates every evaluation artifact of the paper:
   - Table 1 (the twelve ignorance bounds), row by row;
   - the two figures' constructions as k-series (Fig. 1: G_k;
     Fig. 2: G_worst);
   - the universal laws (Observation 2.2, Lemmas 3.1 and 3.8) on random
     corpora;
   - Section 4 (Proposition 4.2 and Lemma 4.1) numerically;
   plus bechamel micro-benchmarks of the computational kernels.

   Usage: dune exec bench/main.exe [-- [--jobs N] [--cache FILE] section ...]
   where section is any of: table1 figures checks sec4 ablations certified
   correlated micro.  The certified section cross-checks the certified
   solver tier against exhaustion on the overlap window, then pushes the
   Table-1 quantities to k = 20..50 with machine-checked certificates,
   writing its rows to BENCH_certified.json.  The correlated section
   cross-checks the exact-rational LP solver on the same window (every
   pure equilibrium inside both polytopes, values interleaving exactly,
   pub-best = optC) and quantifies the value of shared randomness on a
   beyond-window k-series, writing its rows to BENCH_correlated.json.
   With no section arguments, everything runs.  --jobs N (or BI_JOBS=N)
   runs the exhaustive solvers on N worker domains; results are
   bit-identical to --jobs 1.  --cache FILE attaches the
   content-addressed result cache backed by that append-only JSON-lines
   file: a warm rerun replays every exact result from the store and
   emits byte-identical tables.  Structured results are written as JSON
   lines to BENCH_results.json alongside the printed tables. *)

open Bayesian_ignorance
module Pool = Engine.Pool
module Sink = Engine.Sink

let sections =
  [
    ("table1", Table1.run);
    ("figures", Figures.run);
    ("checks", Checks.run);
    ("sec4", Sec4.run);
    ("ablations", Ablations.run);
    ("certified", Certified.run);
    ("correlated", Correlated_bench.run);
    ("micro", Micro.run);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--jobs N] [--cache FILE] [--compare FILE] [section ...]\n\
     available sections: %s\n"
    (String.concat ", " (List.map fst sections));
  exit 1

let parse_args args =
  let rec go jobs cache acc = function
    | [] -> (jobs, cache, List.rev acc)
    | "--compare" :: rest -> (
      match rest with
      | path :: rest' ->
        Micro.compare_with := Some path;
        go jobs cache acc rest'
      | [] ->
        Printf.eprintf "--compare expects a baseline file argument\n";
        exit 1)
    | ("--jobs" | "-j") :: rest -> (
      match rest with
      | n :: rest' -> (
        match Pool.parse_jobs n with
        | Ok n -> go (Some n) cache acc rest'
        | Error e ->
          Printf.eprintf "--jobs: %s\n" e;
          exit 1)
      | [] ->
        Printf.eprintf "--jobs expects an argument\n";
        exit 1)
    | "--cache" :: rest -> (
      match rest with
      | path :: rest' -> go jobs (Some path) acc rest'
      | [] ->
        Printf.eprintf "--cache expects a file argument\n";
        exit 1)
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
      Printf.eprintf "unknown option %S\n" s;
      usage ()
    | s :: rest -> go jobs cache (s :: acc) rest
  in
  go None None [] args

let () =
  (* A malformed BI_JOBS is an operator error, not a silent jobs=1 run. *)
  (match Pool.env_jobs () with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1);
  let jobs_opt, cache_path, requested =
    parse_args (List.tl (Array.to_list Sys.argv))
  in
  let asked = match jobs_opt with Some n -> n | None -> Pool.default_size () in
  let jobs = Pool.recommended_jobs asked in
  let requested = if requested = [] then List.map fst sections else requested in
  List.iter
    (fun name -> if not (List.mem_assoc name sections) then usage ())
    requested;
  print_endline "Bayesian ignorance: reproduction benchmark suite";
  print_endline "(paper values are asymptotic; verdicts check the shape)";
  Printf.printf "(jobs = %d%s; structured results -> BENCH_results.json)\n" jobs
    (if jobs < asked then
       Printf.sprintf " — %d requested, clamped to the core count" asked
     else "");
  print_endline "";
  let pool = Pool.create jobs in
  let sink = Sink.create "BENCH_results.json" in
  let cache =
    Option.map (fun path -> Cache.Service.create ~store_path:path ()) cache_path
  in
  (* Bracketed like the timing footers so the warm-vs-cold byte-identity
     check can filter it out with the same rule. *)
  Option.iter
    (fun c ->
      let s = Cache.Service.stats c in
      Printf.printf
        "[cache: %s; %d entries replayed, %d invalid, %d quarantined]\n\n"
        (Option.get cache_path) s.Cache.Service.loaded s.Cache.Service.invalid
        s.Cache.Service.quarantined)
    cache;
  Sink.emit sink
    [
      ("record", Str "run");
      ("suite", Str "bayesian-ignorance bench");
      ("jobs", Int jobs);
      ("sections", List (List.map (fun s -> Sink.Str s) requested));
    ];
  Fun.protect
    ~finally:(fun () ->
      Option.iter Cache.Service.close cache;
      Sink.close sink;
      Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun name ->
          let run = List.assoc name sections in
          let (), span = Engine.Timer.timed (fun () -> run ~pool ~sink ~cache) in
          Format.printf "[%s: %a at jobs = %d]@.@." name Engine.Timer.pp_span
            span jobs;
          Sink.emit sink
            [
              ("record", Str "section");
              ("section", Str name);
              ("seconds", Float span.Engine.Timer.seconds);
              ("minor_words", Float span.Engine.Timer.minor_words);
              ("major_words", Float span.Engine.Timer.major_words);
              ("jobs", Int jobs);
            ])
        requested);
  (* The micro regression gate reports after its section so every other
     requested section still runs; the process exit is what CI checks. *)
  if !Micro.regression_failed then exit 1
